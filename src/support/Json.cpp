#include "support/Json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace codesign::json {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Value &Value::set(std::string_view Key, Value V) {
  CODESIGN_ASSERT(isObject(), "json: set on non-object");
  for (auto &[K2, V2] : Membs)
    if (K2 == Key) {
      V2 = std::move(V);
      return V2;
    }
  Membs.emplace_back(std::string(Key), std::move(V));
  return Membs.back().second;
}

const Value *Value::find(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[K2, V2] : Membs)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

namespace {

void appendNumber(std::string &Out, double D) {
  if (!std::isfinite(D)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    Out += "null";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void appendIndent(std::string &Out, int Indent, int Depth) {
  Out += '\n';
  Out.append(static_cast<std::size_t>(Indent) * Depth, ' ');
}

} // namespace

void Value::dumpTo(std::string &Out, int Indent, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    return;
  case Kind::Number:
    if (HasInt) {
      if (IntIsUnsigned)
        Out += std::to_string(static_cast<std::uint64_t>(IntV));
      else
        Out += std::to_string(IntV);
    } else {
      appendNumber(Out, NumV);
    }
    return;
  case Kind::String:
    Out += '"';
    Out += escape(StrV);
    Out += '"';
    return;
  case Kind::Array: {
    if (Elems.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (std::size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += ',';
      if (Indent >= 0)
        appendIndent(Out, Indent, Depth + 1);
      Elems[I].dumpTo(Out, Indent, Depth + 1);
    }
    if (Indent >= 0)
      appendIndent(Out, Indent, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Membs.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (std::size_t I = 0; I < Membs.size(); ++I) {
      if (I)
        Out += ',';
      if (Indent >= 0)
        appendIndent(Out, Indent, Depth + 1);
      Out += '"';
      Out += escape(Membs[I].first);
      Out += Indent >= 0 ? "\": " : "\":";
      Membs[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    if (Indent >= 0)
      appendIndent(Out, Indent, Depth);
    Out += '}';
    return;
  }
  }
}

std::string Value::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> run() {
    auto V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  Error fail(std::string_view Msg) const {
    return makeError("json parse error at offset ", std::to_string(Pos), ": ",
                     Msg);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  Expected<Value> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    const char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return S.error();
      return Value(std::move(*S));
    }
    if (consumeWord("true"))
      return Value(true);
    if (consumeWord("false"))
      return Value(false);
    if (consumeWord("null"))
      return Value(nullptr);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail("unexpected character");
  }

  Expected<Value> parseObject() {
    ++Pos; // '{'
    Value Obj = Value::object();
    skipWs();
    if (consume('}'))
      return Obj;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      auto Key = parseString();
      if (!Key)
        return Key.error();
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      auto V = parseValue();
      if (!V)
        return V;
      Obj.set(*Key, std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<Value> parseArray() {
    ++Pos; // '['
    Value Arr = Value::array();
    skipWs();
    if (consume(']'))
      return Arr;
    for (;;) {
      auto V = parseValue();
      if (!V)
        return V;
      Arr.push(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (Pos < Text.size()) {
      const char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      const char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode (BMP only; the reports are ASCII in practice).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Expected<Value> parseNumber() {
    const std::size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool IsInteger = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsInteger = false;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInteger = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    const std::string_view Tok = Text.substr(Start, Pos - Start);
    if (Tok.empty() || Tok == "-")
      return fail("malformed number");
    if (IsInteger) {
      // Preserve 64-bit exactness: unsigned first (cycle counters), then
      // signed, then fall back to double.
      if (Tok[0] != '-') {
        std::uint64_t U = 0;
        auto [P, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), U);
        if (Ec == std::errc() && P == Tok.data() + Tok.size())
          return Value(U);
      } else {
        std::int64_t I = 0;
        auto [P, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), I);
        if (Ec == std::errc() && P == Tok.data() + Tok.size())
          return Value(I);
      }
    }
    double D = 0;
    auto [P, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), D);
    if (Ec != std::errc() || P != Tok.data() + Tok.size())
      return fail("malformed number");
    return Value(D);
  }

  std::string_view Text;
  std::size_t Pos = 0;
};

} // namespace

Expected<Value> parse(std::string_view Text) { return Parser(Text).run(); }

} // namespace codesign::json
