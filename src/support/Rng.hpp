//===- support/Rng.hpp - Deterministic random number generation ----------===//
//
// All stochastic inputs in the project (workload generation for the proxy
// apps, randomized property tests) flow through this deterministic generator
// so runs are reproducible bit-for-bit. SplitMix64 for seeding,
// xoshiro256** for the stream — both public-domain algorithms.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <array>
#include <cstdint>

namespace codesign {

/// SplitMix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitMix64(std::uint64_t &State) {
  State += 0x9E3779B97F4A7C15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Deterministic xoshiro256** generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can drive <random> distributions, but the
/// project uses the direct helpers below to guarantee cross-platform
/// determinism (std distributions are implementation-defined).
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seed the generator; equal seeds give equal streams on every platform.
  explicit Rng(std::uint64_t Seed = 0x5EEDULL) {
    std::uint64_t S = Seed;
    for (auto &Word : State)
      Word = splitMix64(S);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). Bound must be nonzero. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t below(std::uint64_t Bound) {
    const std::uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      const std::uint64_t R = (*this)();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  std::int64_t range(std::int64_t Lo, std::int64_t Hi) {
    return Lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// Bernoulli draw with probability P of returning true.
  bool chance(double P) { return uniform() < P; }

private:
  static constexpr std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::array<std::uint64_t, 4> State{};
};

} // namespace codesign
