//===- support/Error.hpp - Error handling primitives ---------------------===//
//
// Part of the omp-gpu-codesign project: a reproduction of "Co-Designing an
// OpenMP GPU Runtime and Optimizations for Near-Zero Overhead Execution"
// (Doerfert et al., IPDPS 2022).
//
// Error-handling policy (following the C++ Core Guidelines):
//  * Programming errors (broken invariants) abort via CODESIGN_ASSERT /
//    fatalError with a diagnostic. They are never recoverable.
//  * Recoverable conditions (bad user input to the frontend, verifier
//    failures on user-constructed IR, resource exhaustion in the virtual
//    GPU) are reported via Expected<T> so callers must inspect them.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace codesign {

/// Print a diagnostic message to stderr and abort. Used for unrecoverable
/// internal errors (broken invariants, impossible states).
[[noreturn]] void fatalError(std::string_view Msg, const char *File = nullptr,
                             int Line = 0);

/// Assertion macro that stays enabled in all build types. The simulator is a
/// correctness tool; silently continuing past a broken invariant would
/// invalidate every measurement downstream, so we always check.
#define CODESIGN_ASSERT(Cond, Msg)                                            \
  do {                                                                        \
    if (!(Cond))                                                              \
      ::codesign::fatalError((Msg), __FILE__, __LINE__);                      \
  } while (false)

/// Marks a code path that is unreachable by construction.
#define CODESIGN_UNREACHABLE(Msg)                                             \
  ::codesign::fatalError("unreachable: " Msg, __FILE__, __LINE__)

/// A recoverable error with a human-readable message. Deliberately small:
/// the project does not need error codes, only actionable text.
class Error {
public:
  Error() = default;
  explicit Error(std::string Msg) : Msg(std::move(Msg)) {}

  /// The diagnostic text for this error.
  [[nodiscard]] const std::string &message() const { return Msg; }

private:
  std::string Msg;
};

/// Expected<T> holds either a value of type T or an Error. It is the return
/// type of every fallible operation with a meaningful result. A default
/// moved-from state is not observable through the public interface.
template <typename T> class Expected {
public:
  /// Construct from a value (success).
  Expected(T Value) : Value(std::move(Value)) {}
  /// Construct from an error (failure).
  Expected(Error E) : Err(std::move(E)) {}

  /// True when a value is present.
  [[nodiscard]] bool hasValue() const { return Value.has_value(); }
  /// True when a value is present (bool conversion for `if (Result)`).
  explicit operator bool() const { return hasValue(); }

  /// Access the contained value. Precondition: hasValue().
  [[nodiscard]] T &value() {
    CODESIGN_ASSERT(hasValue(), "Expected<T>::value() on error state");
    return *Value;
  }
  /// Access the contained value. Precondition: hasValue().
  [[nodiscard]] const T &value() const {
    CODESIGN_ASSERT(hasValue(), "Expected<T>::value() on error state");
    return *Value;
  }
  /// Move the contained value out. Precondition: hasValue().
  [[nodiscard]] T takeValue() {
    CODESIGN_ASSERT(hasValue(), "Expected<T>::takeValue() on error state");
    return std::move(*Value);
  }

  /// Access the contained error. Precondition: !hasValue().
  [[nodiscard]] const Error &error() const {
    CODESIGN_ASSERT(!hasValue(), "Expected<T>::error() on value state");
    return Err;
  }

  /// Dereference sugar so Expected can be used like a pointer to T.
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  std::optional<T> Value;
  Error Err;
};

/// Expected<void> reports success/failure for operations with no result
/// value. Construct from Error for failure; default-construct (or use
/// success()) for success.
template <> class Expected<void> {
public:
  /// Construct a success value.
  Expected() = default;
  /// Construct from an error (failure).
  Expected(Error E) : Err(std::move(E)), Failed(true) {}

  /// Named success constructor, for readability at return sites.
  static Expected<void> success() { return Expected<void>(); }

  /// True when the operation succeeded.
  [[nodiscard]] bool hasValue() const { return !Failed; }
  /// True when the operation succeeded (bool conversion for `if (Result)`).
  explicit operator bool() const { return hasValue(); }

  /// Access the contained error. Precondition: !hasValue().
  [[nodiscard]] const Error &error() const {
    CODESIGN_ASSERT(!hasValue(), "Expected<void>::error() on success state");
    return Err;
  }

private:
  Error Err;
  bool Failed = false;
};

/// Build an Error from printf-less concatenation of parts; convenience for
/// the common `return makeError("bad thing: ", Name)` pattern.
template <typename... Parts> Error makeError(Parts &&...P) {
  std::string Msg;
  (Msg.append(std::string_view(P)), ...);
  return Error(std::move(Msg));
}

} // namespace codesign
