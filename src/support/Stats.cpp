#include "support/Stats.hpp"

#include <algorithm>
#include <numeric>

namespace codesign {

Samples::Samples(const Samples &Other) {
  std::lock_guard<std::mutex> Lock(Other.Mutex);
  Values = Other.Values;
  Sorted = Other.Sorted;
}

Samples &Samples::operator=(const Samples &Other) {
  if (this == &Other)
    return *this;
  std::scoped_lock Lock(Mutex, Other.Mutex);
  Values = Other.Values;
  Sorted = Other.Sorted;
  return *this;
}

Samples::Samples(Samples &&Other) noexcept {
  std::lock_guard<std::mutex> Lock(Other.Mutex);
  Values = std::move(Other.Values);
  Sorted = Other.Sorted;
  Other.Values.clear();
  Other.Sorted = false;
}

Samples &Samples::operator=(Samples &&Other) noexcept {
  if (this == &Other)
    return *this;
  std::scoped_lock Lock(Mutex, Other.Mutex);
  Values = std::move(Other.Values);
  Sorted = Other.Sorted;
  Other.Values.clear();
  Other.Sorted = false;
  return *this;
}

void Samples::add(double X) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Values.push_back(X);
  Sorted = false;
}

void Samples::merge(const Samples &Other) {
  if (this == &Other) {
    // Self-merge doubles the set; handle without double-locking (and
    // without passing self-iterators to insert).
    std::lock_guard<std::mutex> Lock(Mutex);
    const std::vector<double> Copy = Values;
    Values.insert(Values.end(), Copy.begin(), Copy.end());
    Sorted = false;
    return;
  }
  std::scoped_lock Lock(Mutex, Other.Mutex);
  Values.insert(Values.end(), Other.Values.begin(), Other.Values.end());
  Sorted = false;
}

std::uint64_t Samples::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Values.size();
}

void Samples::ensureSortedLocked() const {
  if (!Sorted) {
    std::sort(Values.begin(), Values.end());
    Sorted = true;
  }
}

double Samples::sum() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return std::accumulate(Values.begin(), Values.end(), 0.0);
}

double Samples::mean() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Values.empty())
    return 0.0;
  return std::accumulate(Values.begin(), Values.end(), 0.0) /
         static_cast<double>(Values.size());
}

double Samples::min() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Values.empty())
    return 0.0;
  ensureSortedLocked();
  return Values.front();
}

double Samples::max() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Values.empty())
    return 0.0;
  ensureSortedLocked();
  return Values.back();
}

double Samples::percentile(double P) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Values.empty())
    return 0.0;
  ensureSortedLocked();
  if (P <= 0.0)
    return Values.front();
  if (P >= 100.0)
    return Values.back();
  const double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  const std::size_t Lo = static_cast<std::size_t>(Rank);
  const double Frac = Rank - static_cast<double>(Lo);
  if (Lo + 1 >= Values.size())
    return Values.back();
  return Values[Lo] + Frac * (Values[Lo + 1] - Values[Lo]);
}

Counters &Counters::global() {
  static Counters Instance;
  return Instance;
}

void Counters::add(std::string_view Name, std::uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  if (It == Values.end())
    Values.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

std::uint64_t Counters::value(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  return It == Values.end() ? 0 : It->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Values.begin(), Values.end()};
}

void Counters::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Values.clear();
}

} // namespace codesign
