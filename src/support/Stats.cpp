#include "support/Stats.hpp"

#include <algorithm>
#include <numeric>

namespace codesign {

void Samples::ensureSorted() const {
  if (!Sorted) {
    std::sort(Values.begin(), Values.end());
    Sorted = true;
  }
}

double Samples::sum() const {
  return std::accumulate(Values.begin(), Values.end(), 0.0);
}

double Samples::min() const {
  if (Values.empty())
    return 0.0;
  ensureSorted();
  return Values.front();
}

double Samples::max() const {
  if (Values.empty())
    return 0.0;
  ensureSorted();
  return Values.back();
}

double Samples::percentile(double P) const {
  if (Values.empty())
    return 0.0;
  ensureSorted();
  if (P <= 0.0)
    return Values.front();
  if (P >= 100.0)
    return Values.back();
  const double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  const std::size_t Lo = static_cast<std::size_t>(Rank);
  const double Frac = Rank - static_cast<double>(Lo);
  if (Lo + 1 >= Values.size())
    return Values.back();
  return Values[Lo] + Frac * (Values[Lo + 1] - Values[Lo]);
}

Counters &Counters::global() {
  static Counters Instance;
  return Instance;
}

void Counters::add(std::string_view Name, std::uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  if (It == Values.end())
    Values.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

std::uint64_t Counters::value(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  return It == Values.end() ? 0 : It->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Values.begin(), Values.end()};
}

void Counters::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Values.clear();
}

} // namespace codesign
