#include "support/Stats.hpp"

namespace codesign {

Counters &Counters::global() {
  static Counters Instance;
  return Instance;
}

void Counters::add(std::string_view Name, std::uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  if (It == Values.end())
    Values.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

std::uint64_t Counters::value(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Values.find(Name);
  return It == Values.end() ? 0 : It->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Values.begin(), Values.end()};
}

void Counters::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Values.clear();
}

} // namespace codesign
