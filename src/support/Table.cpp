#include "support/Table.hpp"

#include "support/Error.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace codesign {

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {
  Aligns.resize(this->Headers.size(), Align::Right);
  if (!Aligns.empty())
    Aligns[0] = Align::Left;
}

void Table::setAlign(std::size_t Col, Align A) {
  CODESIGN_ASSERT(Col < Aligns.size(), "column index out of range");
  Aligns[Col] = A;
}

void Table::startRow() { Rows.emplace_back(); }

void Table::cell(std::string Text) {
  CODESIGN_ASSERT(!Rows.empty(), "cell() before startRow()");
  CODESIGN_ASSERT(Rows.back().size() < Headers.size(),
                  "too many cells in row");
  Rows.back().push_back(std::move(Text));
}

void Table::cell(std::int64_t V) { cell(std::to_string(V)); }

void Table::cell(std::uint64_t V) { cell(std::to_string(V)); }

void Table::cell(double V, int Precision) { cell(formatDouble(V, Precision)); }

void Table::addRow(std::vector<std::string> Cells) {
  CODESIGN_ASSERT(Cells.size() == Headers.size(),
                  "row width does not match header count");
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<std::size_t> Widths(Headers.size(), 0);
  for (std::size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto emitCell = [&](std::ostringstream &OS, const std::string &Text,
                      std::size_t Col) {
    const std::size_t Pad = Widths[Col] - Text.size();
    if (Aligns[Col] == Align::Right)
      OS << std::string(Pad, ' ') << Text;
    else
      OS << Text << std::string(Pad, ' ');
  };

  std::ostringstream OS;
  for (std::size_t I = 0; I < Headers.size(); ++I) {
    if (I)
      OS << " | ";
    emitCell(OS, Headers[I], I);
  }
  OS << '\n';
  for (std::size_t I = 0; I < Headers.size(); ++I) {
    if (I)
      OS << "-+-";
    OS << std::string(Widths[I], '-');
  }
  OS << '\n';
  for (const auto &Row : Rows) {
    for (std::size_t I = 0; I < Headers.size(); ++I) {
      if (I)
        OS << " | ";
      emitCell(OS, I < Row.size() ? Row[I] : std::string(), I);
    }
    OS << '\n';
  }
  return OS.str();
}

void Table::print(std::ostream &OS) const { OS << render(); }

std::string formatDouble(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string formatBytes(std::uint64_t Bytes) {
  return std::to_string(Bytes) + "B";
}

} // namespace codesign
