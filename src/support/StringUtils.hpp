//===- support/StringUtils.hpp - Small string helpers --------------------===//
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace codesign {

/// Split Text on the separator character; empty pieces are kept.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// True when Text begins with Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// True when Text ends with Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view Text);

/// Join pieces with the separator.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Sep);

} // namespace codesign
