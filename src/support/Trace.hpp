//===- support/Trace.hpp - Structured-event tracer -------------------------===//
//
// Lightweight structured tracing for the whole toolchain, mirroring the
// paper's zero-cost debug facility (Section III-G): when tracing is off the
// only cost on any instrumented path is one relaxed atomic load, so the
// instrumentation can stay compiled into release binaries. When enabled,
// subsystems record spans (scoped wall-time intervals with u64 payload
// fields), instants and counter samples; the buffer drains as JSON lines
// (one compact object per event) for offline tooling.
//
// Events carry a monotonically increasing sequence number instead of an
// absolute timestamp so two traces of the same workload diff cleanly;
// durations are measured with the steady clock.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codesign::trace {

/// What one trace event records.
enum class EventKind : std::uint8_t {
  Span,    ///< A scoped interval; DurationMicros is meaningful.
  Instant, ///< A point event.
  Counter, ///< A sampled counter value carried in the fields.
};

/// One recorded event. Fields are (name, u64) pairs — every quantity the
/// toolchain traces (cycles, instruction counts, pass deltas, byte traffic)
/// is an unsigned integer, which also keeps the JSON exact.
struct Event {
  EventKind Kind = EventKind::Instant;
  std::string Category; ///< Subsystem, e.g. "opt", "frontend", "vgpu".
  std::string Name;     ///< Event name, e.g. pass or phase name.
  std::string Tenant;   ///< Owning tenant ("" = untagged); see TenantScope.
  std::uint64_t Seq = 0;
  std::uint64_t DurationMicros = 0; ///< Spans only.
  std::vector<std::pair<std::string, std::uint64_t>> Fields;
};

/// The calling thread's current tenant tag. Every event recorded by this
/// thread is stamped with it, so one tracer can serve many tenants (the
/// multi-tenant service runs requests from different clients on shared
/// worker threads) and traces can still be filtered per client.
[[nodiscard]] const std::string &threadTenant();
/// Set the calling thread's tenant tag (empty = untagged). Prefer
/// TenantScope, which restores the previous tag.
void setThreadTenant(std::string_view Tenant);

/// RAII tenant tag: stamps every event the current thread records during
/// its lifetime, restoring the previous tag (service workers nest request
/// handling inside their own bookkeeping).
class TenantScope {
public:
  explicit TenantScope(std::string_view Tenant) : Previous(threadTenant()) {
    setThreadTenant(Tenant);
  }
  TenantScope(const TenantScope &) = delete;
  TenantScope &operator=(const TenantScope &) = delete;
  ~TenantScope() { setThreadTenant(Previous); }

private:
  std::string Previous;
};

/// Process-wide trace recorder. Disabled by default; every record call is
/// gated on one relaxed atomic load so instrumented hot paths cost nothing
/// measurable when tracing is off.
class Tracer {
public:
  /// The process-wide instance.
  static Tracer &global();

  /// Hot-path gate. Relaxed is sufficient: a missed event near the moment
  /// of enabling is acceptable, a lock or fence on every pass is not.
  [[nodiscard]] bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }
  /// Turn recording on or off.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  /// Record a point event.
  void instant(std::string_view Category, std::string_view Name,
               std::vector<std::pair<std::string, std::uint64_t>> Fields = {});
  /// Record a completed span of the given duration. ForceRecord bypasses
  /// the enabled() gate: a ScopedSpan that was open when tracing got
  /// disabled must still land in the buffer.
  void span(std::string_view Category, std::string_view Name,
            std::uint64_t DurationMicros,
            std::vector<std::pair<std::string, std::uint64_t>> Fields = {},
            bool ForceRecord = false);
  /// Record a counter sample.
  void counter(std::string_view Category, std::string_view Name,
               std::uint64_t Value);

  /// Number of buffered events.
  [[nodiscard]] std::size_t size() const;
  /// Copy of the buffered events, in record order.
  [[nodiscard]] std::vector<Event> events() const;
  /// Buffered events stamped with the given tenant tag, in record order
  /// (per-tenant trace isolation for the service).
  [[nodiscard]] std::vector<Event> eventsForTenant(std::string_view T) const;
  /// Write every buffered event as one compact JSON object per line and
  /// clear the buffer.
  void drain(std::ostream &OS);
  /// Discard buffered events and reset the sequence number.
  void clear();

private:
  void record(Event E);

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mutex;
  std::uint64_t NextSeq = 0;
  std::vector<Event> Buffer;
};

/// RAII span: measures steady-clock wall time from construction to
/// destruction and records a Span event iff tracing was enabled at
/// construction. Extra fields can be attached while the span is open.
class ScopedSpan {
public:
  ScopedSpan(std::string_view Category, std::string_view Name)
      : Active(Tracer::global().enabled()), Category(Category), Name(Name) {
    if (Active)
      Start = std::chrono::steady_clock::now();
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (!Active)
      return;
    const auto End = std::chrono::steady_clock::now();
    const auto Micros =
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count();
    Tracer::global().span(Category, Name,
                          static_cast<std::uint64_t>(Micros),
                          std::move(Fields), /*ForceRecord=*/true);
  }

  /// Attach a (name, value) payload field to the span being measured.
  void field(std::string_view K, std::uint64_t V) {
    if (Active)
      Fields.emplace_back(std::string(K), V);
  }
  /// Whether this span is actually recording.
  [[nodiscard]] bool active() const { return Active; }

private:
  bool Active;
  std::string Category;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
  std::vector<std::pair<std::string, std::uint64_t>> Fields;
};

} // namespace codesign::trace
