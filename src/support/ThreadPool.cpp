#include "support/ThreadPool.hpp"

#include "support/Error.hpp"

namespace codesign::support {

unsigned resolveHostThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  const unsigned HW = std::thread::hardware_concurrency();
  return HW != 0 ? HW : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads <= 1)
    return;
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 0; I + 1 < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runJob(const std::function<void(std::uint64_t)> &Fn) {
  for (;;) {
    const std::uint64_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (I >= JobSize)
      return;
    Fn(I);
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(std::uint64_t)> *Fn = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCV.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      Fn = JobFn;
    }
    runJob(*Fn);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--BusyWorkers == 0)
        DoneCV.notify_one();
    }
  }
}

void ThreadPool::parallelFor(std::uint64_t N,
                             const std::function<void(std::uint64_t)> &Fn) {
  if (Workers.empty() || N <= 1) {
    for (std::uint64_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CODESIGN_ASSERT(BusyWorkers == 0, "nested parallelFor on one pool");
    JobFn = &Fn;
    JobSize = N;
    NextIndex.store(0, std::memory_order_relaxed);
    BusyWorkers = static_cast<unsigned>(Workers.size());
    ++Generation;
  }
  WakeCV.notify_all();
  // The caller is one of the execution lanes.
  runJob(Fn);
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCV.wait(Lock, [&] { return BusyWorkers == 0; });
  JobFn = nullptr;
}

} // namespace codesign::support
