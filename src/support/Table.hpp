//===- support/Table.hpp - Fixed-width ASCII table printer ---------------===//
//
// Every benchmark binary reproduces one table or figure from the paper and
// prints it through this formatter so outputs are uniform and diffable.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace codesign {

/// Column alignment inside a Table.
enum class Align { Left, Right };

/// A simple row/column table with automatic column widths. Cells are strings;
/// numeric helpers format with fixed precision so rows line up.
class Table {
public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Set alignment for a column (default: Left for col 0, Right otherwise).
  void setAlign(std::size_t Col, Align A);

  /// Begin a new row. Subsequent cell() calls fill it left to right.
  void startRow();
  /// Append a string cell to the current row.
  void cell(std::string Text);
  /// Append an integer cell.
  void cell(std::int64_t V);
  /// Append an unsigned cell.
  void cell(std::uint64_t V);
  /// Append a floating-point cell with the given precision.
  void cell(double V, int Precision = 3);

  /// Append a full row at once.
  void addRow(std::vector<std::string> Cells);

  /// Render the table (headers, separator, rows) to a string.
  [[nodiscard]] std::string render() const;

  /// Render and write to the stream.
  void print(std::ostream &OS) const;

  /// Number of data rows currently in the table.
  [[nodiscard]] std::size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<Align> Aligns;
  std::vector<std::vector<std::string>> Rows;
};

/// Format a double with fixed precision (helper shared by benches).
std::string formatDouble(double V, int Precision);

/// Format a byte count as a plain number with a 'B' suffix (paper style,
/// e.g. "8288B").
std::string formatBytes(std::uint64_t Bytes);

} // namespace codesign
