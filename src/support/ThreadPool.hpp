//===- support/ThreadPool.hpp - Fork-join worker pool ----------------------===//
//
// A small fork-join pool used by the virtual GPU's parallel launch engine:
// construct with N workers, then hand it an index space to sweep. Indices
// are claimed dynamically through an atomic counter (cheap work stealing),
// and — crucially for the launch engine's determinism guarantee — they are
// claimed in increasing order, so the lowest-numbered item is always
// processed before any higher-numbered item is claimed.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace codesign::support {

/// Resolve a requested host-thread count: 0 means "one per hardware
/// thread", anything else is taken literally. Always returns >= 1.
unsigned resolveHostThreads(unsigned Requested);

/// A fixed-size fork-join pool. parallelFor blocks the caller until every
/// index has been processed; the calling thread participates, so a pool of
/// N threads uses N-1 workers plus the caller. Function objects must be
/// safe to invoke concurrently from different threads.
class ThreadPool {
public:
  /// Spawn a pool that executes with NumThreads total threads (including
  /// the caller of parallelFor). NumThreads <= 1 spawns no workers and
  /// parallelFor degenerates to a serial loop.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total execution width (workers + caller).
  [[nodiscard]] unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Invoke Fn(I) for every I in [0, N). Indices are claimed in increasing
  /// order by an atomic counter; the call returns once all N invocations
  /// completed. Not reentrant: one parallelFor at a time per pool.
  void parallelFor(std::uint64_t N,
                   const std::function<void(std::uint64_t)> &Fn);

private:
  void workerLoop();
  void runJob(const std::function<void(std::uint64_t)> &Fn);

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WakeCV;  ///< signals workers that a job is ready
  std::condition_variable DoneCV;  ///< signals the caller that workers idled
  const std::function<void(std::uint64_t)> *JobFn = nullptr;
  std::uint64_t JobSize = 0;
  std::atomic<std::uint64_t> NextIndex{0};
  std::uint64_t Generation = 0;   ///< bumped per job so workers wake exactly once
  unsigned BusyWorkers = 0;
  bool Stopping = false;
};

} // namespace codesign::support
