//===- apps/GridMini.hpp - Lattice QCD SU(3) proxy --------------------------===//
//
// Port of GridMini (paper Section V-A): per lattice site, multiply two
// SU(3) complex matrices (the core arithmetic of lattice QCD link-field
// updates). Reported in GFLOP-equivalents like the paper's Figure 12.
//
// Section VII reproduction: "we addressed the loop bound issue manually
// for GridMini prior to our evaluation by passing in the loop bound into
// the target region" — the BoundByValue knob switches between the fixed
// form (trip count as a kernel argument) and the original form (trip count
// loaded from device memory inside the region, whose access blocks
// aligned-barrier elimination).
//
//===----------------------------------------------------------------------===//
#pragma once

#include "apps/AppCommon.hpp"
#include "host/HostRuntime.hpp"

namespace codesign::apps {

/// Workload shape: Volume = Teams * Threads by default so the
/// oversubscription build stays valid.
struct GridMiniConfig {
  std::uint64_t Volume = 4096; ///< lattice sites
  std::uint32_t Teams = 32;
  std::uint32_t Threads = 128;
  bool BoundByValue = true; ///< Section VII fix applied (paper default)
  std::uint64_t Seed = 7;
};

/// The GridMini application.
class GridMini {
public:
  GridMini(vgpu::VirtualGPU &GPU, GridMiniConfig Cfg = {});

  AppRunResult run(const BuildConfig &Build);

  /// FLOPs per site of one SU(3) x SU(3) product.
  static constexpr double FlopsPerSite = 198.0;
  static constexpr const char *MetricName = "flops/cycle";

private:
  void generate();
  void upload();
  [[nodiscard]] frontend::KernelSpec makeSpec(bool ByValue) const;
  void referenceSite(std::uint64_t Site, double *Out18) const;

  vgpu::VirtualGPU &GPU;
  host::HostRuntime Host;
  GridMiniConfig Cfg;
  std::int64_t BodyId = 0;

  std::vector<double> FieldU, FieldV, FieldOut; ///< [V][3][3][2]
  std::vector<std::int64_t> BoundBlock;         ///< device-resident bound
  ImageSlot Images{Host};
};

} // namespace codesign::apps
