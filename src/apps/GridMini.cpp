#include "apps/GridMini.hpp"

#include <cmath>

namespace codesign::apps {

using frontend::BodyArg;
using frontend::KernelSpec;
using frontend::NativeBody;
using frontend::Stmt;
using frontend::TripCount;
using vgpu::DeviceAddr;
using vgpu::NativeCtx;
using vgpu::NativeOpInfo;

namespace {

/// C = A * B for 3x3 complex matrices in [row][col][re,im] layout.
void su3mul(const double *A, const double *B, double *C) {
  for (int R = 0; R < 3; ++R)
    for (int Cc = 0; Cc < 3; ++Cc) {
      double Re = 0, Im = 0;
      for (int K = 0; K < 3; ++K) {
        const double Ar = A[(R * 3 + K) * 2], Ai = A[(R * 3 + K) * 2 + 1];
        const double Br = B[(K * 3 + Cc) * 2], Bi = B[(K * 3 + Cc) * 2 + 1];
        Re += Ar * Br - Ai * Bi;
        Im += Ar * Bi + Ai * Br;
      }
      C[(R * 3 + Cc) * 2] = Re;
      C[(R * 3 + Cc) * 2 + 1] = Im;
    }
}

} // namespace

GridMini::GridMini(vgpu::VirtualGPU &GPU, GridMiniConfig Cfg)
    : GPU(GPU), Host(GPU), Cfg(Cfg) {
  generate();
  upload();
  // Body: (iv, uPtr, vPtr, outPtr): 36 field loads, 198 FLOPs, 18 stores.
  BodyId = GPU.registry().add(NativeOpInfo{
      "gridmini_su3xsu3",
      [](NativeCtx &Ctx) {
        const std::int64_t Site = Ctx.argI64(0);
        const DeviceAddr U = Ctx.argPtr(1).advance(Site * 18 * 8);
        const DeviceAddr V = Ctx.argPtr(2).advance(Site * 18 * 8);
        const DeviceAddr O = Ctx.argPtr(3).advance(Site * 18 * 8);
        double A[18], B[18], C[18];
        Ctx.loadBlockF64(U, A, 18);
        Ctx.loadBlockF64(V, B, 18);
        su3mul(A, B, C);
        Ctx.storeBlockF64(O, C, 18);
        Ctx.chargeCycles(static_cast<std::uint64_t>(GridMini::FlopsPerSite) *
                         2);
      },
      36});
}

void GridMini::generate() {
  Rng R(Cfg.Seed);
  const std::size_t N = static_cast<std::size_t>(Cfg.Volume) * 18;
  FieldU.resize(N);
  FieldV.resize(N);
  FieldOut.assign(N, 0.0);
  for (double &X : FieldU)
    X = R.uniform(-1.0, 1.0);
  for (double &X : FieldV)
    X = R.uniform(-1.0, 1.0);
  BoundBlock = {static_cast<std::int64_t>(Cfg.Volume)};
}

void GridMini::upload() {
  auto A = Host.enterData(FieldU.data(), FieldU.size() * 8);
  auto B = Host.enterData(FieldV.data(), FieldV.size() * 8);
  auto C = Host.enterData(FieldOut.data(), FieldOut.size() * 8);
  auto D = Host.enterData(BoundBlock.data(), 8);
  CODESIGN_ASSERT(A && B && C && D, "gridmini upload failed");
}

KernelSpec GridMini::makeSpec(bool ByValue) const {
  KernelSpec Spec;
  Spec.Name = "gridmini_su3_kernel";
  Spec.Params = {{ir::Type::ptr(), "u"},
                 {ir::Type::ptr(), "v"},
                 {ir::Type::ptr(), "out"},
                 {ir::Type::ptr(), "bound"},
                 {ir::Type::i64(), "n"}};
  NativeBody Body;
  Body.NativeId = BodyId;
  Body.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1),
               BodyArg::arg(2)};
  const TripCount Trip =
      ByValue ? TripCount::argument(4) : TripCount::loadFrom(3, 0);
  Spec.Stmts = {Stmt::distributeParallelFor(Trip, Body)};
  return Spec;
}

void GridMini::referenceSite(std::uint64_t Site, double *Out18) const {
  su3mul(FieldU.data() + Site * 18, FieldV.data() + Site * 18, Out18);
}

AppRunResult GridMini::run(const BuildConfig &Build) {
  AppRunResult Result;
  Result.Build = Build.Name;
  // CUDA always passes the bound by value (the paper matched the OpenMP
  // version to it); OpenMP follows the knob.
  const bool ByValue =
      Build.Options.CG.RT == frontend::RuntimeKind::Native || Cfg.BoundByValue;
  auto CK = frontend::compileKernel(makeSpec(ByValue), Build.Options,
                                    GPU.registry());
  if (!CK) {
    Result.Error = CK.error().message();
    return Result;
  }
  Result.Stats = CK->Stats;
  Result.Compile = CK->Timing;
  Result.Module = CK->M;
  auto Registered = Images.install(std::move(CK->M), CK->Bytecode);
  if (!Registered) {
    Result.Error = Registered.error().message();
    return Result;
  }

  std::fill(FieldOut.begin(), FieldOut.end(), 0.0);
  CODESIGN_ASSERT(Host.updateTo(FieldOut.data()).hasValue(), "reset failed");
  const host::KernelArg Args[] = {
      host::KernelArg::mapped(FieldU.data()),
      host::KernelArg::mapped(FieldV.data()),
      host::KernelArg::mapped(FieldOut.data()),
      host::KernelArg::mapped(BoundBlock.data()),
      host::KernelArg::i64(static_cast<std::int64_t>(Cfg.Volume))};
  const auto WallStart = std::chrono::steady_clock::now();
  auto LR = Host.launch(CK->Kernel->name(), Args, Cfg.Teams, Cfg.Threads);
  Result.WallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - WallStart)
          .count());
  Result.Backend = GPU.execBackend();
  if (!LR || !LR->Ok) {
    Result.Error = LR ? LR->Error : LR.error().message();
    return Result;
  }
  Result.Ok = true;
  Result.Metrics = LR->Metrics;
  Result.Profile = LR->Profile;
  CODESIGN_ASSERT(Host.updateFrom(FieldOut.data()).hasValue(),
                  "readback failed");
  Result.OutputHash = fnv1a(FnvSeed, FieldOut.data(), FieldOut.size() * 8);
  Result.Verified = true;
  double Ref[18];
  for (std::uint64_t S = 0; S < Cfg.Volume && Result.Verified; ++S) {
    referenceSite(S, Ref);
    for (int I = 0; I < 18; ++I)
      if (std::fabs(FieldOut[S * 18 + I] - Ref[I]) > 1e-9) {
        Result.Verified = false;
        break;
      }
  }
  Result.AppMetric =
      static_cast<double>(Cfg.Volume) * FlopsPerSite /
      static_cast<double>(LR->Metrics.KernelCycles);
  return Result;
}

} // namespace codesign::apps
