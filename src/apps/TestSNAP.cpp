#include "apps/TestSNAP.hpp"

#include <cmath>

namespace codesign::apps {

using frontend::BodyArg;
using frontend::KernelSpec;
using frontend::NativeBody;
using frontend::Stmt;
using frontend::TripCount;
using vgpu::DeviceAddr;
using vgpu::NativeCtx;
using vgpu::NativeOpInfo;

namespace {

constexpr std::uint32_t WS = TestSNAPConfig::WorkspaceDoublesPerThread;

/// Build the per-pair workspace values (stand-in for the Ulist expansion).
void fillWorkspace(double X, double Y, double Z, double *W) {
  W[0] = X;
  W[1] = Y;
  W[2] = Z;
  for (std::uint32_t I = 3; I < WS; ++I)
    W[I] = W[I - 1] * 0.75 + W[I - 2] * 0.2 - W[I - 3] * 0.05;
}

/// Contract the workspace into one force contribution.
double contract(const double *W) {
  double F = 0;
  for (std::uint32_t I = 0; I < WS; ++I)
    F += W[I] * W[(I * 7 + 3) % WS];
  return F;
}

} // namespace

TestSNAP::TestSNAP(vgpu::VirtualGPU &GPU, TestSNAPConfig Cfg)
    : GPU(GPU), Host(GPU), Cfg(Cfg) {
  generate();
  upload();
  // Body: (iv, forcesPtr, positionsPtr, scratchPtr, threadNum). The
  // workspace round-trips through the team-shared scratch — exactly the
  // too-big-for-registers intermediate arrays of the real TestSNAP.
  BodyId = GPU.registry().add(NativeOpInfo{
      "testsnap_pair",
      [](NativeCtx &Ctx) {
        const std::int64_t Pair = Ctx.argI64(0);
        const DeviceAddr Forces = Ctx.argPtr(1);
        const DeviceAddr Pos = Ctx.argPtr(2).advance(Pair * 3 * 8);
        const std::int32_t Tn = Ctx.argI32(4);
        const DeviceAddr Slot =
            Ctx.argPtr(3).advance(static_cast<std::int64_t>(Tn) * WS * 8);
        double W[WS];
        fillWorkspace(Ctx.loadF64(Pos), Ctx.loadF64(Pos.advance(8)),
                      Ctx.loadF64(Pos.advance(16)), W);
        // Stage through shared memory (charged as shared traffic).
        Ctx.storeBlockF64(Slot, W, WS);
        double R[WS];
        Ctx.loadBlockF64(Slot, R, WS);
        const double F = contract(R);
        Ctx.storeF64(Forces.advance(Pair * 8), F);
        Ctx.chargeCycles(WS * 12); // recurrence + contraction FLOPs
      },
      20});
}

void TestSNAP::generate() {
  Rng R(Cfg.Seed);
  const std::size_t NPairs =
      static_cast<std::size_t>(Cfg.NAtoms) * Cfg.NNeighbors;
  Positions.resize(NPairs * 3);
  for (double &V : Positions)
    V = R.uniform(-1.0, 1.0);
  Forces.assign(NPairs, 0.0);
}

void TestSNAP::upload() {
  auto A = Host.enterData(Positions.data(), Positions.size() * 8);
  auto B = Host.enterData(Forces.data(), Forces.size() * 8);
  CODESIGN_ASSERT(A && B, "testsnap upload failed");
}

KernelSpec TestSNAP::makeSpec() const {
  KernelSpec Spec;
  Spec.Name = "testsnap_force_kernel";
  Spec.Params = {{ir::Type::ptr(), "forces"},
                 {ir::Type::ptr(), "positions"},
                 {ir::Type::i64(), "npairs"}};
  NativeBody Body;
  Body.NativeId = BodyId;
  Body.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1),
               BodyArg::scratch(), BodyArg::threadNum()};
  Spec.Stmts = {Stmt::distributeParallelFor(TripCount::argument(2), Body,
                                            scratchBytes())};
  return Spec;
}

double TestSNAP::referencePair(std::uint64_t Pair) const {
  double W[WS];
  fillWorkspace(Positions[Pair * 3], Positions[Pair * 3 + 1],
                Positions[Pair * 3 + 2], W);
  return contract(W);
}

AppRunResult TestSNAP::run(const BuildConfig &Build) {
  AppRunResult Result;
  Result.Build = Build.Name;
  auto CK =
      frontend::compileKernel(makeSpec(), Build.Options, GPU.registry());
  if (!CK) {
    Result.Error = CK.error().message();
    return Result;
  }
  Result.Stats = CK->Stats;
  Result.Compile = CK->Timing;
  Result.Module = CK->M;
  auto Registered = Images.install(std::move(CK->M), CK->Bytecode);
  if (!Registered) {
    Result.Error = Registered.error().message();
    return Result;
  }

  const std::uint64_t NPairs =
      static_cast<std::uint64_t>(Cfg.NAtoms) * Cfg.NNeighbors;
  std::fill(Forces.begin(), Forces.end(), 0.0);
  CODESIGN_ASSERT(Host.updateTo(Forces.data()).hasValue(), "reset failed");
  const host::KernelArg Args[] = {
      host::KernelArg::mapped(Forces.data()),
      host::KernelArg::mapped(Positions.data()),
      host::KernelArg::i64(static_cast<std::int64_t>(NPairs))};
  const auto WallStart = std::chrono::steady_clock::now();
  auto LR = Host.launch(CK->Kernel->name(), Args, Cfg.Teams, Cfg.Threads);
  Result.WallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - WallStart)
          .count());
  Result.Backend = GPU.execBackend();
  if (!LR || !LR->Ok) {
    Result.Error = LR ? LR->Error : LR.error().message();
    return Result;
  }
  Result.Ok = true;
  Result.Metrics = LR->Metrics;
  Result.Profile = LR->Profile;
  CODESIGN_ASSERT(Host.updateFrom(Forces.data()).hasValue(),
                  "readback failed");
  Result.OutputHash = fnv1a(FnvSeed, Forces.data(), Forces.size() * 8);
  Result.Verified = true;
  for (std::uint64_t P = 0; P < NPairs; ++P)
    if (std::fabs(Forces[P] - referencePair(P)) > 1e-9) {
      Result.Verified = false;
      break;
    }
  Result.AppMetric = static_cast<double>(NPairs) /
                     (static_cast<double>(LR->Metrics.KernelCycles) / 1000.0);
  return Result;
}

} // namespace codesign::apps
