#include "apps/XSBench.hpp"

#include <cmath>

namespace codesign::apps {

using frontend::BodyArg;
using frontend::KernelSpec;
using frontend::NativeBody;
using frontend::Stmt;
using frontend::TripCount;
using vgpu::DeviceAddr;
using vgpu::NativeCtx;
using vgpu::NativeOpInfo;

namespace {

/// The lookup computation, shared by the device functor and the host
/// reference (identical operation order => bitwise-identical results).
struct LookupInputs {
  std::uint64_t NG = 0;
  std::uint32_t NNucPerMat = 0;
  std::uint32_t NMaterials = 0;
};

/// Device-side lookup. Every table access goes through Ctx (and is charged
/// as a global-memory access), preserving the memory-bound character.
double deviceLookup(NativeCtx &Ctx, std::uint64_t Iv, DeviceAddr Grid,
                    DeviceAddr XS, DeviceAddr Mats, const LookupInputs &In) {
  const std::uint64_t H = ivHash(Iv);
  const double E = hashToUnit(H);
  const std::uint32_t Mat = static_cast<std::uint32_t>(H % In.NMaterials);
  // Binary search over the unionized grid.
  std::uint64_t Lo = 0, Hi = In.NG - 1;
  while (Hi - Lo > 1) {
    const std::uint64_t Mid = (Lo + Hi) / 2;
    const double V = Ctx.loadF64(Grid.advance(static_cast<std::int64_t>(Mid) * 8));
    if (V <= E)
      Lo = Mid;
    else
      Hi = Mid;
  }
  const double ELo = Ctx.loadF64(Grid.advance(static_cast<std::int64_t>(Lo) * 8));
  const double EHi = Ctx.loadF64(Grid.advance(static_cast<std::int64_t>(Hi) * 8));
  const double F = (E - ELo) / (EHi - ELo + 1e-30);
  double Total = 0.0;
  for (std::uint32_t K = 0; K < In.NNucPerMat; ++K) {
    const std::int64_t Nuc = Ctx.loadI64(
        Mats.advance((static_cast<std::int64_t>(Mat) * In.NNucPerMat + K) * 8));
    const std::int64_t Base = (Nuc * static_cast<std::int64_t>(In.NG) +
                               static_cast<std::int64_t>(Lo)) *
                              16;
    double AB[2];
    Ctx.loadBlockF64(XS.advance(Base), AB, 2);
    Total += AB[0] * (1.0 - F) + AB[1] * F;
  }
  Ctx.chargeCycles(80); // index arithmetic + interpolation FLOPs
  return Total;
}

} // namespace

XSBench::XSBench(vgpu::VirtualGPU &GPU, XSBenchConfig Cfg)
    : GPU(GPU), Host(GPU), Cfg(Cfg) {
  generate();
  upload();

  // Config-by-reference body: (iv, outPtr, cfgPtr). The five field loads
  // per iteration are the Section VII by-reference overhead.
  BodyByRefId = GPU.registry().add(NativeOpInfo{
      "xsbench_lookup_cfgptr",
      [this](NativeCtx &Ctx) {
        const std::uint64_t Iv = static_cast<std::uint64_t>(Ctx.argI64(0));
        const DeviceAddr OutP = Ctx.argPtr(1);
        const DeviceAddr CfgP = Ctx.argPtr(2);
        LookupInputs In;
        In.NG = static_cast<std::uint64_t>(Ctx.loadI64(CfgP));
        In.NNucPerMat =
            static_cast<std::uint32_t>(Ctx.loadI64(CfgP.advance(8)));
        In.NMaterials =
            static_cast<std::uint32_t>(Ctx.loadI64(CfgP.advance(16)));
        const DeviceAddr Grid(
            static_cast<std::uint64_t>(Ctx.loadI64(CfgP.advance(24))));
        const DeviceAddr XS(
            static_cast<std::uint64_t>(Ctx.loadI64(CfgP.advance(32))));
        const DeviceAddr Mats(
            static_cast<std::uint64_t>(Ctx.loadI64(CfgP.advance(40))));
        const double R = deviceLookup(Ctx, Iv, Grid, XS, Mats, In);
        Ctx.storeF64(OutP.advance(static_cast<std::int64_t>(Iv) * 8), R);
      },
      24});

  // By-value body (CUDA style): (iv, outPtr, gridPtr, xsPtr, matPtr).
  BodyByValId = GPU.registry().add(NativeOpInfo{
      "xsbench_lookup_byval",
      [this](NativeCtx &Ctx) {
        const std::uint64_t Iv = static_cast<std::uint64_t>(Ctx.argI64(0));
        const DeviceAddr OutP = Ctx.argPtr(1);
        LookupInputs In;
        In.NG = this->Cfg.NGridpoints;
        In.NNucPerMat = this->Cfg.NNuclidesPerMaterial;
        In.NMaterials = this->Cfg.NMaterials;
        const double R = deviceLookup(Ctx, Iv, Ctx.argPtr(2), Ctx.argPtr(3),
                                      Ctx.argPtr(4), In);
        Ctx.storeF64(OutP.advance(static_cast<std::int64_t>(Iv) * 8), R);
      },
      22});
}

XSBench::~XSBench() = default;

void XSBench::generate() {
  Rng R(Cfg.Seed);
  EnergyGrid.resize(Cfg.NGridpoints);
  for (std::uint64_t I = 0; I < Cfg.NGridpoints; ++I)
    EnergyGrid[I] =
        (static_cast<double>(I) + 0.5 * R.uniform()) /
        static_cast<double>(Cfg.NGridpoints);
  XSData.resize(Cfg.NNuclides * Cfg.NGridpoints * 2);
  for (double &V : XSData)
    V = R.uniform(0.1, 10.0);
  MaterialTable.resize(
      static_cast<std::size_t>(Cfg.NMaterials) * Cfg.NNuclidesPerMaterial);
  for (auto &N : MaterialTable)
    N = static_cast<std::int64_t>(R.below(Cfg.NNuclides));
  Out.assign(Cfg.NLookups, 0.0);
}

void XSBench::upload() {
  auto GridAddr =
      Host.enterData(EnergyGrid.data(), EnergyGrid.size() * 8);
  auto XSAddr = Host.enterData(XSData.data(), XSData.size() * 8);
  auto MatAddr =
      Host.enterData(MaterialTable.data(), MaterialTable.size() * 8);
  CODESIGN_ASSERT(GridAddr && XSAddr && MatAddr, "xsbench upload failed");
  ConfigBlock = {Cfg.NGridpoints,
                 Cfg.NNuclidesPerMaterial,
                 Cfg.NMaterials,
                 GridAddr->Bits,
                 XSAddr->Bits,
                 MatAddr->Bits};
  auto CfgAddr = Host.enterData(ConfigBlock.data(), ConfigBlock.size() * 8);
  auto OutAddr = Host.enterData(Out.data(), Out.size() * 8);
  CODESIGN_ASSERT(CfgAddr && OutAddr, "xsbench upload failed");
}

KernelSpec XSBench::makeSpec(bool ByReference) const {
  KernelSpec Spec;
  Spec.Name = "xsbench_lookup_kernel";
  NativeBody Body;
  Body.Flags.ReadsMemory = true;
  Body.Flags.WritesMemory = true;
  Body.Flags.Divergent = true;
  if (ByReference) {
    Spec.Params = {{ir::Type::ptr(), "out"},
                   {ir::Type::ptr(), "cfg"},
                   {ir::Type::i64(), "n"}};
    Body.NativeId = BodyByRefId;
    Body.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1)};
  } else {
    Spec.Params = {{ir::Type::ptr(), "out"},
                   {ir::Type::ptr(), "grid"},
                   {ir::Type::ptr(), "xs"},
                   {ir::Type::ptr(), "mats"},
                   {ir::Type::i64(), "n"}};
    Body.NativeId = BodyByValId;
    Body.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1),
                 BodyArg::arg(2), BodyArg::arg(3)};
  }
  Spec.Stmts = {Stmt::distributeParallelFor(
      TripCount::argument(static_cast<unsigned>(Spec.Params.size() - 1)),
      Body)};
  return Spec;
}

double XSBench::referenceLookup(std::uint64_t Iv) const {
  const std::uint64_t H = ivHash(Iv);
  const double E = hashToUnit(H);
  const std::uint32_t Mat = static_cast<std::uint32_t>(H % Cfg.NMaterials);
  std::uint64_t Lo = 0, Hi = Cfg.NGridpoints - 1;
  while (Hi - Lo > 1) {
    const std::uint64_t Mid = (Lo + Hi) / 2;
    if (EnergyGrid[Mid] <= E)
      Lo = Mid;
    else
      Hi = Mid;
  }
  const double F = (E - EnergyGrid[Lo]) /
                   (EnergyGrid[Hi] - EnergyGrid[Lo] + 1e-30);
  double Total = 0.0;
  for (std::uint32_t K = 0; K < Cfg.NNuclidesPerMaterial; ++K) {
    const std::int64_t Nuc =
        MaterialTable[static_cast<std::size_t>(Mat) *
                          Cfg.NNuclidesPerMaterial +
                      K];
    const std::size_t Base =
        (static_cast<std::size_t>(Nuc) * Cfg.NGridpoints + Lo) * 2;
    Total += XSData[Base] * (1.0 - F) + XSData[Base + 1] * F;
  }
  return Total;
}

AppRunResult XSBench::run(const BuildConfig &Build) {
  AppRunResult Result;
  Result.Build = Build.Name;
  // CUDA receives the fields by value; OpenMP follows the config knob.
  const bool ByRef = Build.Options.CG.RT != frontend::RuntimeKind::Native &&
                     Cfg.ConfigStructByReference;
  auto CK = frontend::compileKernel(makeSpec(ByRef), Build.Options,
                                    GPU.registry());
  if (!CK) {
    Result.Error = CK.error().message();
    return Result;
  }
  Result.Stats = CK->Stats;
  Result.Compile = CK->Timing;
  Result.Module = CK->M;
  auto Registered = Images.install(std::move(CK->M), CK->Bytecode);
  if (!Registered) {
    Result.Error = Registered.error().message();
    return Result;
  }

  std::fill(Out.begin(), Out.end(), 0.0);
  auto Updated = Host.updateTo(Out.data());
  CODESIGN_ASSERT(Updated.hasValue(), "output reset failed");

  std::vector<host::KernelArg> Args;
  Args.push_back(host::KernelArg::mapped(Out.data()));
  if (ByRef) {
    Args.push_back(host::KernelArg::mapped(ConfigBlock.data()));
  } else {
    Args.push_back(host::KernelArg::mapped(EnergyGrid.data()));
    Args.push_back(host::KernelArg::mapped(XSData.data()));
    Args.push_back(host::KernelArg::mapped(MaterialTable.data()));
  }
  Args.push_back(host::KernelArg::i64(static_cast<std::int64_t>(Cfg.NLookups)));

  const auto WallStart = std::chrono::steady_clock::now();
  auto LR = Host.launch(CK->Kernel->name(), Args, Cfg.Teams, Cfg.Threads);
  Result.WallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - WallStart)
          .count());
  Result.Backend = GPU.execBackend();
  if (!LR || !LR->Ok) {
    Result.Error = LR ? LR->Error : LR.error().message();
    return Result;
  }
  Result.Ok = true;
  Result.Metrics = LR->Metrics;
  Result.Profile = LR->Profile;

  auto Back = Host.updateFrom(Out.data());
  CODESIGN_ASSERT(Back.hasValue(), "output readback failed");
  Result.OutputHash = fnv1a(FnvSeed, Out.data(), Out.size() * 8);
  Result.Verified = true;
  for (std::uint64_t I = 0; I < Cfg.NLookups; ++I)
    if (std::fabs(Out[I] - referenceLookup(I)) > 1e-9) {
      Result.Verified = false;
      break;
    }
  Result.AppMetric = static_cast<double>(Cfg.NLookups) /
                     (static_cast<double>(LR->Metrics.KernelCycles) / 1000.0);
  return Result;
}

} // namespace codesign::apps
