//===- apps/RSBench.hpp - Multipole cross-section proxy (compute bound) ----===//
//
// Port of RSBench: "a compute bound alternative implementation" of the
// OpenMC macroscopic cross-section lookup (paper Section V-A). Instead of
// gathering from large tables, each lookup evaluates a handful of
// resonance poles with complex arithmetic — few memory accesses, lots of
// FLOPs. In the paper this benchmark "already exhibited CUDA-like
// performance" under the old runtime, and the New-RT-(Nightly) build
// *regressed* — both shapes this port reproduces.
//
//===----------------------------------------------------------------------===//
#pragma once

#include "apps/AppCommon.hpp"
#include "host/HostRuntime.hpp"

namespace codesign::apps {

/// Workload shape (sized so oversubscription-assuming builds are valid).
struct RSBenchConfig {
  std::uint32_t NNuclides = 32;
  std::uint32_t NWindows = 64;
  std::uint32_t NPolesPerWindow = 4;
  std::uint32_t NNuclidesPerMaterial = 6;
  std::uint32_t NMaterials = 12;
  std::uint64_t NLookups = 8192;
  std::uint32_t Teams = 64;
  std::uint32_t Threads = 128;
  std::uint64_t Seed = 1337;
};

/// The RSBench application.
class RSBench {
public:
  RSBench(vgpu::VirtualGPU &GPU, RSBenchConfig Cfg = {});

  AppRunResult run(const BuildConfig &Build);

  static constexpr const char *MetricName = "lookups/kcycle";

private:
  void generate();
  void upload();
  [[nodiscard]] frontend::KernelSpec makeSpec() const;
  [[nodiscard]] double referenceLookup(std::uint64_t Iv) const;

  vgpu::VirtualGPU &GPU;
  host::HostRuntime Host;
  RSBenchConfig Cfg;
  std::int64_t BodyId = 0;

  std::vector<double> Poles;               ///< [NN][NW][NP][4]
  std::vector<std::int64_t> MaterialTable; ///< [NMat][NNucPerMat]
  std::vector<double> Out;
  ImageSlot Images{Host};
};

} // namespace codesign::apps
