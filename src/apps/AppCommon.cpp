#include "apps/AppCommon.hpp"

#include "frontend/Driver.hpp"

namespace codesign::apps {

std::vector<BuildConfig> paperBuildConfigs(bool IncludeAssumed) {
  std::vector<BuildConfig> Out;
  // The legacy baseline exists only in -DCODESIGN_BUILD_OLDRT=ON builds;
  // default builds compare the co-designed configurations (and the
  // execution backends) against each other.
  if (frontend::hasOldRT())
    Out.push_back({"Old RT (Nightly)", frontend::CompileOptions::oldRT()});
  Out.push_back({"New RT (Nightly)", frontend::CompileOptions::newRTNightly()});
  Out.push_back({"New RT - w/o Assumptions",
                 frontend::CompileOptions::newRTNoAssumptions()});
  if (IncludeAssumed)
    Out.push_back({"New RT", frontend::CompileOptions::newRT()});
  Out.push_back({"CUDA", frontend::CompileOptions::cuda()});
  return Out;
}

} // namespace codesign::apps
