#include "apps/AppCommon.hpp"

namespace codesign::apps {

std::vector<BuildConfig> paperBuildConfigs(bool IncludeAssumed) {
  std::vector<BuildConfig> Out = {
      {"Old RT (Nightly)", frontend::CompileOptions::oldRT()},
      {"New RT (Nightly)", frontend::CompileOptions::newRTNightly()},
      {"New RT - w/o Assumptions",
       frontend::CompileOptions::newRTNoAssumptions()},
  };
  if (IncludeAssumed)
    Out.push_back({"New RT", frontend::CompileOptions::newRT()});
  Out.push_back({"CUDA", frontend::CompileOptions::cuda()});
  return Out;
}

} // namespace codesign::apps
