//===- apps/AppCommon.hpp - Shared proxy-application harness ---------------===//
//
// Each proxy application (XSBench, RSBench, GridMini, TestSNAP, MiniFMM)
// follows the same protocol: generate a deterministic workload, upload it
// through the host runtime, compile its kernel under one of the paper's
// five build configurations, launch, verify against a host reference, and
// report the launch metrics plus the static resource stats — everything
// Figures 10-13 need.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "frontend/TargetCompiler.hpp"
#include "host/HostRuntime.hpp"
#include "support/Rng.hpp"
#include "vgpu/VirtualGPU.hpp"

namespace codesign::apps {

/// One build row of the paper's Figure 11.
struct BuildConfig {
  std::string Name;
  frontend::CompileOptions Options;
};

/// The paper's five build configurations, in Figure 11 order:
/// Old RT (Nightly), New RT (Nightly), New RT w/o Assumptions, New RT,
/// CUDA (NVCC). Pass IncludeAssumed=false for workloads where the
/// oversubscription assumption does not hold (more iterations than
/// hardware threads) — the paper likewise reports "n/a" for the assumed
/// build on several benchmarks (Figure 11).
std::vector<BuildConfig> paperBuildConfigs(bool IncludeAssumed = true);

/// Outcome of running one app under one build configuration.
struct AppRunResult {
  std::string Build;
  bool Ok = false;
  std::string Error;
  vgpu::LaunchMetrics Metrics;
  vgpu::KernelStaticStats Stats;
  /// Launch profile (op classes, byte traffic, barrier waits, team
  /// imbalance); Collected only when the device had profiling enabled.
  vgpu::LaunchProfile Profile;
  /// Per-phase compile timing; populated only when tracing is enabled.
  frontend::CompilePhaseTiming Compile;
  /// The compiled (and executed) kernel module. Shared with the image
  /// slot; treat as read-only. Analysis-only consumers — the lint test
  /// harness runs the static linter over exactly what ran on the device.
  std::shared_ptr<ir::Module> Module;
  bool Verified = false;
  /// Application-level throughput in work-items per kilocycle (apps scale
  /// and label this as appropriate: lookups, sites, atom-steps, pairs).
  double AppMetric = 0.0;
  /// Host wall-clock time of the kernel launch, microseconds (steady clock
  /// around HostRuntime::launch), and the execution backend that produced
  /// it. Simulated metrics are backend-invariant by construction (the
  /// native backend reports no cycle model); WallMicros is the real-time
  /// cost of producing them, which the bench reports so backend speedups
  /// are measurable.
  std::uint64_t WallMicros = 0;
  std::string Backend;
  /// FNV-1a hash of the kernel's device-visible output buffers, read back
  /// after the launch. The backend parity suite asserts this is
  /// bit-identical across the tree, bytecode, and native engines.
  std::uint64_t OutputHash = 0;
};

/// FNV-1a over a byte range; the apps fold each output buffer through this
/// to produce AppRunResult::OutputHash.
inline std::uint64_t fnv1a(std::uint64_t H, const void *Data,
                           std::size_t Size) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001B3ULL;
  }
  return H;
}
constexpr std::uint64_t FnvSeed = 0xCBF29CE484222325ULL;

/// Keeps exactly one compiled app module registered with a HostRuntime.
/// Apps compile the same kernel name once per build configuration, and the
/// host runtime rejects duplicate kernel names, so every new compilation
/// swaps out the previous image. Retired modules stay alive until the slot
/// is destroyed (results of earlier runs may still reference them).
class ImageSlot {
public:
  explicit ImageSlot(host::HostRuntime &Host) : Host(Host) {}

  /// Register M with the runtime, replacing the previously installed
  /// module (if any). The compiled kernel's bytecode lowering rides along
  /// so the device's fast tier never re-lowers at launch.
  Expected<void>
  install(std::shared_ptr<ir::Module> M,
          std::shared_ptr<const vgpu::BytecodeModule> Bytecode = nullptr) {
    if (Current) {
      if (auto Out = Host.unregisterImage(*Current); !Out)
        return Out;
      Retired.push_back(std::move(Current));
    }
    Current = std::move(M);
    return Host.registerImage(*Current, std::move(Bytecode));
  }

private:
  host::HostRuntime &Host;
  std::shared_ptr<ir::Module> Current;
  std::vector<std::shared_ptr<ir::Module>> Retired;
};

/// Device-side deterministic hash used by kernels that need per-iteration
/// pseudo-randomness (the Monte Carlo lookups). Must match the host
/// reference exactly.
constexpr std::uint64_t ivHash(std::uint64_t Iv) {
  std::uint64_t S = Iv + 0x9E3779B97F4A7C15ULL;
  S = (S ^ (S >> 30)) * 0xBF58476D1CE4E5B9ULL;
  S = (S ^ (S >> 27)) * 0x94D049BB133111EBULL;
  return S ^ (S >> 31);
}

/// Uniform double in [0,1) from a hash value.
constexpr double hashToUnit(std::uint64_t H) {
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

} // namespace codesign::apps
