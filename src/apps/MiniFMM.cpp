#include "apps/MiniFMM.hpp"

#include <cmath>

namespace codesign::apps {

using frontend::BodyArg;
using frontend::KernelSpec;
using frontend::NativeBody;
using frontend::Stmt;
using frontend::TripCount;
using vgpu::DeviceAddr;
using vgpu::NativeCtx;
using vgpu::NativeOpInfo;

namespace {

/// P2P kernel both sides share: softened inverse-square interaction.
double p2p(const double *P) {
  const double DX = P[0] - P[4], DY = P[1] - P[5], DZ = P[2] - P[6];
  const double R2 = DX * DX + DY * DY + DZ * DZ + 1e-6;
  const double Inv = 1.0 / std::sqrt(R2);
  return P[3] * P[7] * Inv * Inv * Inv * (DX + DY + DZ);
}

} // namespace

MiniFMM::MiniFMM(vgpu::VirtualGPU &GPU, MiniFMMConfig Cfg)
    : GPU(GPU), Host(GPU), Cfg(Cfg) {
  generate();
  upload();

  // Serial per-team traversal bookkeeping: mark this team's subtree.
  PrepBodyId = GPU.registry().add(NativeOpInfo{
      "minifmm_prepare",
      [](NativeCtx &Ctx) {
        const DeviceAddr Marks = Ctx.argPtr(0);
        const std::int32_t Team = Ctx.argI32(1);
        Ctx.storeF64(Marks.advance(static_cast<std::int64_t>(Team) * 8),
                     static_cast<double>(Team) + 0.5);
        Ctx.chargeCycles(200); // traversal bookkeeping
      },
      8});

  // P2P interaction: (iv, outPtr, particlesPtr, teamNum).
  P2PBodyId = GPU.registry().add(NativeOpInfo{
      "minifmm_p2p",
      [this](NativeCtx &Ctx) {
        const std::int64_t Local = Ctx.argI64(0);
        const std::int32_t Team = Ctx.argI32(3);
        const std::int64_t Pair =
            static_cast<std::int64_t>(Team) * this->Cfg.PairsPerTeam + Local;
        double P[8];
        const DeviceAddr Src = Ctx.argPtr(2).advance(Pair * 8 * 8);
        Ctx.loadBlockF64(Src, P, 8);
        Ctx.storeF64(Ctx.argPtr(1).advance(Pair * 8), p2p(P));
        Ctx.chargeCycles(90);
      },
      14});

  // Nested-task tail: every executing thread bumps its team's counter.
  TaskTailId = GPU.registry().add(NativeOpInfo{
      "minifmm_task_tail",
      [](NativeCtx &Ctx) {
        const DeviceAddr Counter =
            Ctx.argPtr(0).advance(static_cast<std::int64_t>(Ctx.teamId()) * 8);
        // Model a small dynamic task: read-modify-write plus compute.
        const double Old = Ctx.loadF64(Counter);
        Ctx.storeF64(Counter, Old + 1.0);
        Ctx.chargeCycles(120);
      },
      6});
}

void MiniFMM::generate() {
  Rng R(Cfg.Seed);
  const std::size_t NPairs =
      static_cast<std::size_t>(Cfg.Teams) * Cfg.PairsPerTeam;
  Particles.resize(NPairs * 8);
  for (double &V : Particles)
    V = R.uniform(-1.0, 1.0);
  Out.assign(NPairs, 0.0);
  TeamMarks.assign(Cfg.Teams, 0.0);
  TaskCount.assign(Cfg.Teams, 0.0);
}

void MiniFMM::upload() {
  auto A = Host.enterData(Particles.data(), Particles.size() * 8);
  auto B = Host.enterData(Out.data(), Out.size() * 8);
  auto C = Host.enterData(TeamMarks.data(), TeamMarks.size() * 8);
  auto D = Host.enterData(TaskCount.data(), TaskCount.size() * 8);
  CODESIGN_ASSERT(A && B && C && D, "minifmm upload failed");
}

KernelSpec MiniFMM::makeSpec() const {
  KernelSpec Spec;
  Spec.Name = "minifmm_traverse_kernel";
  Spec.Params = {{ir::Type::ptr(), "out"},
                 {ir::Type::ptr(), "particles"},
                 {ir::Type::ptr(), "marks"},
                 {ir::Type::ptr(), "taskcount"},
                 {ir::Type::i64(), "pairs_per_team"}};
  NativeBody Prep;
  Prep.NativeId = PrepBodyId;
  Prep.Args = {BodyArg::arg(2), BodyArg::teamNum()};

  NativeBody P2P;
  P2P.NativeId = P2PBodyId;
  P2P.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1),
              BodyArg::teamNum()};

  NativeBody Tail;
  Tail.NativeId = TaskTailId;
  Tail.Args = {BodyArg::arg(3)};

  Spec.Stmts = {
      Stmt::serial(Prep),
      Stmt::parallel({Stmt::forLoop(TripCount::argument(4), P2P),
                      Stmt::parallelWork(Tail)}),
  };
  return Spec;
}

double MiniFMM::referencePair(std::uint64_t Pair) const {
  return p2p(Particles.data() + Pair * 8);
}

AppRunResult MiniFMM::run(const BuildConfig &Build) {
  AppRunResult Result;
  Result.Build = Build.Name;
  auto CK =
      frontend::compileKernel(makeSpec(), Build.Options, GPU.registry());
  if (!CK) {
    Result.Error = CK.error().message();
    return Result;
  }
  Result.Stats = CK->Stats;
  Result.Compile = CK->Timing;
  const ir::ExecMode Mode = CK->Kernel->execMode();
  Result.Module = CK->M;
  auto Registered = Images.install(std::move(CK->M), CK->Bytecode);
  if (!Registered) {
    Result.Error = Registered.error().message();
    return Result;
  }

  std::fill(Out.begin(), Out.end(), 0.0);
  std::fill(TeamMarks.begin(), TeamMarks.end(), 0.0);
  std::fill(TaskCount.begin(), TaskCount.end(), 0.0);
  CODESIGN_ASSERT(Host.updateTo(Out.data()).hasValue() &&
                      Host.updateTo(TeamMarks.data()).hasValue() &&
                      Host.updateTo(TaskCount.data()).hasValue(),
                  "reset failed");
  const host::KernelArg Args[] = {
      host::KernelArg::mapped(Out.data()),
      host::KernelArg::mapped(Particles.data()),
      host::KernelArg::mapped(TeamMarks.data()),
      host::KernelArg::mapped(TaskCount.data()),
      host::KernelArg::i64(Cfg.PairsPerTeam)};
  const auto WallStart = std::chrono::steady_clock::now();
  auto LR = Host.launch(CK->Kernel->name(), Args, Cfg.Teams, Cfg.Threads);
  Result.WallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - WallStart)
          .count());
  Result.Backend = GPU.execBackend();
  if (!LR || !LR->Ok) {
    Result.Error = LR ? LR->Error : LR.error().message();
    return Result;
  }
  Result.Ok = true;
  Result.Metrics = LR->Metrics;
  Result.Profile = LR->Profile;
  CODESIGN_ASSERT(Host.updateFrom(Out.data()).hasValue() &&
                      Host.updateFrom(TeamMarks.data()).hasValue() &&
                      Host.updateFrom(TaskCount.data()).hasValue(),
                  "readback failed");
  Result.OutputHash = fnv1a(FnvSeed, Out.data(), Out.size() * 8);
  Result.OutputHash =
      fnv1a(Result.OutputHash, TeamMarks.data(), TeamMarks.size() * 8);
  Result.OutputHash =
      fnv1a(Result.OutputHash, TaskCount.data(), TaskCount.size() * 8);

  Result.Verified = true;
  const std::uint64_t NPairs =
      static_cast<std::uint64_t>(Cfg.Teams) * Cfg.PairsPerTeam;
  for (std::uint64_t P = 0; P < NPairs && Result.Verified; ++P)
    if (std::fabs(Out[P] - referencePair(P)) > 1e-9)
      Result.Verified = false;
  for (std::uint32_t T = 0; T < Cfg.Teams && Result.Verified; ++T)
    if (std::fabs(TeamMarks[T] - (static_cast<double>(T) + 0.5)) > 1e-12)
      Result.Verified = false;
  // The nested-task counter depends on how many threads execute the
  // region: the generic-mode runtime runs it on the workers, the
  // SPMD/native lowerings on every thread of the team.
  const double ExpectedTasks =
      Mode == ir::ExecMode::Generic
          ? static_cast<double>(Cfg.Threads - 1)
          : static_cast<double>(Cfg.Threads);
  for (std::uint32_t T = 0; T < Cfg.Teams && Result.Verified; ++T)
    if (std::fabs(TaskCount[T] - ExpectedTasks) > 1e-12)
      Result.Verified = false;

  Result.AppMetric = static_cast<double>(NPairs) /
                     (static_cast<double>(LR->Metrics.KernelCycles) / 1000.0);
  return Result;
}

} // namespace codesign::apps
