//===- apps/XSBench.hpp - Monte Carlo cross-section lookup proxy -----------===//
//
// Port of XSBench, the OpenMC proxy of the paper's Section V-A: "the
// continuous energy macroscopic neutron cross-section lookup", which is
// memory bound in this setup. Each lookup draws a pseudo-random energy and
// material, binary-searches the unionized energy grid, gathers the
// micro-cross-sections of every nuclide in the material, and interpolates.
// The reduction stays outside the timed kernel, matching the paper's note.
//
// Section VII reproduction: the simulation configuration struct is passed
// to the OpenMP kernel *by reference* (the body re-loads its fields each
// iteration), while the CUDA lowering receives the fields by value —
// the residual gap the paper discusses.
//
//===----------------------------------------------------------------------===//
#pragma once

#include "apps/AppCommon.hpp"
#include "host/HostRuntime.hpp"

namespace codesign::apps {

/// Workload shape. Defaults are sized so the oversubscription-assuming
/// build is valid (one lookup per hardware thread).
struct XSBenchConfig {
  std::uint64_t NGridpoints = 4096;
  std::uint32_t NNuclides = 32;
  std::uint32_t NNuclidesPerMaterial = 8;
  std::uint32_t NMaterials = 12;
  std::uint64_t NLookups = 8192;
  std::uint32_t Teams = 64;
  std::uint32_t Threads = 128;
  /// Pass the config struct by reference (OpenMP default per Section VII);
  /// the CUDA path always receives scalars.
  bool ConfigStructByReference = true;
  std::uint64_t Seed = 42;
};

/// The XSBench application: owns the device data and the registered
/// kernel body, runs under any build configuration.
class XSBench {
public:
  XSBench(vgpu::VirtualGPU &GPU, XSBenchConfig Cfg = {});
  ~XSBench();

  /// Compile + launch + verify under one build configuration.
  AppRunResult run(const BuildConfig &Build);

  /// Label for AppMetric (lookups per kilocycle).
  static constexpr const char *MetricName = "lookups/kcycle";

private:
  void generate();
  void upload();
  frontend::KernelSpec makeSpec(bool ByReference) const;
  [[nodiscard]] double referenceLookup(std::uint64_t Iv) const;

  vgpu::VirtualGPU &GPU;
  host::HostRuntime Host;
  XSBenchConfig Cfg;
  std::int64_t BodyByRefId = 0;
  std::int64_t BodyByValId = 0;

  std::vector<double> EnergyGrid;          ///< [NG], ascending
  std::vector<double> XSData;              ///< [NN][NG][2]
  std::vector<std::int64_t> MaterialTable; ///< [NMat][NNucPerMat]
  std::vector<std::uint64_t> ConfigBlock;  ///< device-side config struct
  std::vector<double> Out;                 ///< [NLookups]
  /// Compiled modules must outlive their loaded images in the host runtime.
  ImageSlot Images{Host};
};

} // namespace codesign::apps
