#include "apps/RSBench.hpp"

#include <cmath>

namespace codesign::apps {

using frontend::BodyArg;
using frontend::KernelSpec;
using frontend::NativeBody;
using frontend::Stmt;
using frontend::TripCount;
using vgpu::DeviceAddr;
using vgpu::NativeCtx;
using vgpu::NativeOpInfo;

namespace {

/// The Faddeeva-flavoured pole evaluation both sides share. Pole data is
/// (Re(MP_EA), Im(MP_EA), Re(MP_RT), Im(MP_RT)).
double evalPoles(const double *P, std::uint32_t NPoles, double E) {
  double Sig = 0.0;
  const double SqrtE = std::sqrt(E + 1e-12);
  for (std::uint32_t K = 0; K < NPoles; ++K) {
    const double EaR = P[K * 4 + 0], EaI = P[K * 4 + 1];
    const double RtR = P[K * 4 + 2], RtI = P[K * 4 + 3];
    // (RT / (EA - sqrt(E))) with complex arithmetic, accumulate real part.
    const double DR = EaR - SqrtE, DI = EaI + 1e-6;
    const double Den = DR * DR + DI * DI;
    const double QR = (RtR * DR + RtI * DI) / Den;
    const double QI = (RtI * DR - RtR * DI) / Den;
    // A couple of transcendental-ish refinement steps (compute padding
    // standing in for the real Faddeeva evaluation).
    const double W = QR * QR - QI * QI + 0.5 * QR * QI;
    Sig += QR + 0.01 * W;
  }
  return Sig;
}

} // namespace

RSBench::RSBench(vgpu::VirtualGPU &GPU, RSBenchConfig Cfg)
    : GPU(GPU), Host(GPU), Cfg(Cfg) {
  generate();
  upload();
  // Body: (iv, outPtr, polesPtr, matPtr). Pole data for one window is
  // staged into a local buffer (charged loads), then the heavy arithmetic
  // is charged as pure compute: the compute-bound profile.
  BodyId = GPU.registry().add(NativeOpInfo{
      "rsbench_lookup",
      [this](NativeCtx &Ctx) {
        const std::uint64_t Iv = static_cast<std::uint64_t>(Ctx.argI64(0));
        const DeviceAddr OutP = Ctx.argPtr(1);
        const DeviceAddr PolesP = Ctx.argPtr(2);
        const DeviceAddr MatsP = Ctx.argPtr(3);
        const std::uint64_t H = ivHash(Iv);
        const double E = hashToUnit(H);
        const std::uint32_t Mat =
            static_cast<std::uint32_t>(H % this->Cfg.NMaterials);
        const std::uint32_t Win = static_cast<std::uint32_t>(
            E * this->Cfg.NWindows) % this->Cfg.NWindows;
        double Total = 0.0;
        thread_local std::vector<double> Buf;
        Buf.resize(this->Cfg.NPolesPerWindow * 4);
        for (std::uint32_t K = 0; K < this->Cfg.NNuclidesPerMaterial; ++K) {
          const std::int64_t Nuc = Ctx.loadI64(MatsP.advance(
              (static_cast<std::int64_t>(Mat) * this->Cfg.NNuclidesPerMaterial +
               K) *
              8));
          const std::int64_t Base =
              ((Nuc * this->Cfg.NWindows + Win) * this->Cfg.NPolesPerWindow) * 4 * 8;
          Ctx.loadBlockF64(PolesP.advance(Base), Buf.data(),
                           this->Cfg.NPolesPerWindow * 4);
          Total += evalPoles(Buf.data(), this->Cfg.NPolesPerWindow, E);
          // ~70 FLOPs per pole, charged as compute (the FLOPs happen
          // natively above).
          Ctx.chargeCycles(this->Cfg.NPolesPerWindow * 140);
        }
        Ctx.storeF64(OutP.advance(static_cast<std::int64_t>(Iv) * 8), Total);
      },
      40});
}

void RSBench::generate() {
  Rng R(Cfg.Seed);
  Poles.resize(static_cast<std::size_t>(Cfg.NNuclides) * Cfg.NWindows *
               Cfg.NPolesPerWindow * 4);
  for (double &V : Poles)
    V = R.uniform(0.5, 2.0);
  MaterialTable.resize(
      static_cast<std::size_t>(Cfg.NMaterials) * Cfg.NNuclidesPerMaterial);
  for (auto &N : MaterialTable)
    N = static_cast<std::int64_t>(R.below(Cfg.NNuclides));
  Out.assign(Cfg.NLookups, 0.0);
}

void RSBench::upload() {
  auto A = Host.enterData(Poles.data(), Poles.size() * 8);
  auto B = Host.enterData(MaterialTable.data(), MaterialTable.size() * 8);
  auto C = Host.enterData(Out.data(), Out.size() * 8);
  CODESIGN_ASSERT(A && B && C, "rsbench upload failed");
}

KernelSpec RSBench::makeSpec() const {
  KernelSpec Spec;
  Spec.Name = "rsbench_lookup_kernel";
  Spec.Params = {{ir::Type::ptr(), "out"},
                 {ir::Type::ptr(), "poles"},
                 {ir::Type::ptr(), "mats"},
                 {ir::Type::i64(), "n"}};
  NativeBody Body;
  Body.NativeId = BodyId;
  Body.Args = {BodyArg::iter(), BodyArg::arg(0), BodyArg::arg(1),
               BodyArg::arg(2)};
  Spec.Stmts = {Stmt::distributeParallelFor(TripCount::argument(3), Body)};
  return Spec;
}

double RSBench::referenceLookup(std::uint64_t Iv) const {
  const std::uint64_t H = ivHash(Iv);
  const double E = hashToUnit(H);
  const std::uint32_t Mat = static_cast<std::uint32_t>(H % this->Cfg.NMaterials);
  const std::uint32_t Win =
      static_cast<std::uint32_t>(E * this->Cfg.NWindows) % this->Cfg.NWindows;
  double Total = 0.0;
  for (std::uint32_t K = 0; K < this->Cfg.NNuclidesPerMaterial; ++K) {
    const std::int64_t Nuc =
        MaterialTable[static_cast<std::size_t>(Mat) *
                          Cfg.NNuclidesPerMaterial +
                      K];
    const std::size_t Base =
        (static_cast<std::size_t>(Nuc) * Cfg.NWindows + Win) *
        Cfg.NPolesPerWindow * 4;
    Total += evalPoles(Poles.data() + Base, Cfg.NPolesPerWindow, E);
  }
  return Total;
}

AppRunResult RSBench::run(const BuildConfig &Build) {
  AppRunResult Result;
  Result.Build = Build.Name;
  auto CK =
      frontend::compileKernel(makeSpec(), Build.Options, GPU.registry());
  if (!CK) {
    Result.Error = CK.error().message();
    return Result;
  }
  Result.Stats = CK->Stats;
  Result.Compile = CK->Timing;
  Result.Module = CK->M;
  auto Registered = Images.install(std::move(CK->M), CK->Bytecode);
  if (!Registered) {
    Result.Error = Registered.error().message();
    return Result;
  }

  std::fill(Out.begin(), Out.end(), 0.0);
  CODESIGN_ASSERT(Host.updateTo(Out.data()).hasValue(), "reset failed");
  const host::KernelArg Args[] = {
      host::KernelArg::mapped(Out.data()),
      host::KernelArg::mapped(Poles.data()),
      host::KernelArg::mapped(MaterialTable.data()),
      host::KernelArg::i64(static_cast<std::int64_t>(Cfg.NLookups))};
  const auto WallStart = std::chrono::steady_clock::now();
  auto LR = Host.launch(CK->Kernel->name(), Args, Cfg.Teams, Cfg.Threads);
  Result.WallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - WallStart)
          .count());
  Result.Backend = GPU.execBackend();
  if (!LR || !LR->Ok) {
    Result.Error = LR ? LR->Error : LR.error().message();
    return Result;
  }
  Result.Ok = true;
  Result.Metrics = LR->Metrics;
  Result.Profile = LR->Profile;
  CODESIGN_ASSERT(Host.updateFrom(Out.data()).hasValue(), "readback failed");
  Result.OutputHash = fnv1a(FnvSeed, Out.data(), Out.size() * 8);
  Result.Verified = true;
  for (std::uint64_t I = 0; I < Cfg.NLookups; ++I)
    if (std::fabs(Out[I] - referenceLookup(I)) > 1e-9) {
      Result.Verified = false;
      break;
    }
  Result.AppMetric = static_cast<double>(Cfg.NLookups) /
                     (static_cast<double>(LR->Metrics.KernelCycles) / 1000.0);
  return Result;
}

} // namespace codesign::apps
