//===- apps/TestSNAP.hpp - SNAP force-calculation proxy ---------------------===//
//
// Port of TestSNAP (paper Section V-A): the SNAP force kernel from LAMMPS,
// which "performs the force calculation repeatedly, checking the results
// against the reference data" and reports a grind time. Its signature
// characteristic for this study: per-thread intermediate arrays (the
// Ulist/Zlist workspaces) that are too large for registers and live in
// team-shared scratch — so unlike the other proxies, an optimized build
// legitimately keeps a few KiB of static shared memory (Figure 11 shows
// 3076 B for the optimized New RT row).
//
// The paper reports no CUDA row for TestSNAP ("the supplied CUDA
// implementation used Kokkos for which a one-to-one kernel mapping ...
// could not be determined"); the benches mark that cell n/a.
//
//===----------------------------------------------------------------------===//
#pragma once

#include "apps/AppCommon.hpp"
#include "host/HostRuntime.hpp"

namespace codesign::apps {

/// Workload shape. Threads * WorkspaceDoublesPerThread * 8 = 3072 B of
/// per-team scratch, matching the paper's TestSNAP footprint.
struct TestSNAPConfig {
  std::uint32_t NAtoms = 128;
  std::uint32_t NNeighbors = 12;
  std::uint32_t Teams = 64;
  std::uint32_t Threads = 24;
  static constexpr std::uint32_t WorkspaceDoublesPerThread = 16;
  std::uint64_t Seed = 99;
};

/// The TestSNAP application.
class TestSNAP {
public:
  TestSNAP(vgpu::VirtualGPU &GPU, TestSNAPConfig Cfg = {});

  AppRunResult run(const BuildConfig &Build);

  /// AppMetric: (atom,neighbor) pairs per kilocycle (inverse grind time).
  static constexpr const char *MetricName = "pairs/kcycle";

  /// Scratch bytes per team.
  [[nodiscard]] std::uint64_t scratchBytes() const {
    return static_cast<std::uint64_t>(Cfg.Threads) *
           TestSNAPConfig::WorkspaceDoublesPerThread * 8;
  }

private:
  void generate();
  void upload();
  [[nodiscard]] frontend::KernelSpec makeSpec() const;
  [[nodiscard]] double referencePair(std::uint64_t Pair) const;

  vgpu::VirtualGPU &GPU;
  host::HostRuntime Host;
  TestSNAPConfig Cfg;
  std::int64_t BodyId = 0;

  std::vector<double> Positions; ///< [NAtoms*NNeighbors][3]
  std::vector<double> Forces;    ///< [NAtoms*NNeighbors]
  ImageSlot Images{Host};
};

} // namespace codesign::apps
