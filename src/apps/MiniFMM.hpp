//===- apps/MiniFMM.hpp - Fast Multipole Method proxy ----------------------===//
//
// Port of MiniFMM (paper Section V-A): dual-tree traversal with dynamic
// task parallelism. The port keeps the structural features that made
// MiniFMM the hardest case in the paper's evaluation (the one benchmark
// that still trailed CUDA by ~2x even after a 1.85x improvement):
//
//   * a sequential per-team stage (traversal bookkeeping) before the
//     parallel work — the kernel is emitted in generic mode and must be
//     SPMDized (with guarding) by the optimizer;
//   * a worksharing loop over this team's interaction pairs (P2P);
//   * a *nested* parallel region standing in for dynamic tasking, which
//     the runtime serializes with on-demand thread ICV states (Figure 4) —
//     this keeps the thread-state machinery alive and prevents complete
//     state elimination, the source of the residual gap.
//
//===----------------------------------------------------------------------===//
#pragma once

#include "apps/AppCommon.hpp"
#include "host/HostRuntime.hpp"

namespace codesign::apps {

/// Workload shape: each team owns one subtree with PairsPerTeam
/// interactions (PairsPerTeam < Threads keeps the threads-oversubscription
/// build valid).
struct MiniFMMConfig {
  std::uint32_t Teams = 64;
  std::uint32_t Threads = 64;
  std::uint32_t PairsPerTeam = 48;
  std::uint64_t Seed = 4242;
};

/// The MiniFMM application.
class MiniFMM {
public:
  MiniFMM(vgpu::VirtualGPU &GPU, MiniFMMConfig Cfg = {});

  AppRunResult run(const BuildConfig &Build);

  static constexpr const char *MetricName = "pairs/kcycle";

private:
  void generate();
  void upload();
  [[nodiscard]] frontend::KernelSpec makeSpec() const;
  [[nodiscard]] double referencePair(std::uint64_t Pair) const;

  vgpu::VirtualGPU &GPU;
  host::HostRuntime Host;
  MiniFMMConfig Cfg;
  std::int64_t PrepBodyId = 0;
  std::int64_t P2PBodyId = 0;
  std::int64_t TaskTailId = 0;

  std::vector<double> Particles; ///< [Teams*PairsPerTeam][8] src/dst coords
  std::vector<double> Out;       ///< [Teams*PairsPerTeam]
  std::vector<double> TeamMarks; ///< [Teams] written by the serial stage
  std::vector<double> TaskCount; ///< [Teams] nested-task execution counter
  ImageSlot Images{Host};
};

} // namespace codesign::apps
