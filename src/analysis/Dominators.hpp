//===- analysis/Dominators.hpp - Dominator tree ----------------------------===//
//
// Dominance is the backbone of the paper's Section IV-B2 ("Lifetime-Aware
// Reachability and Dominance Analysis"): a store that dominates a load with
// no interfering accesses or synchronization in between determines the
// loaded value. We compute dominators with the Cooper/Harvey/Kennedy
// iterative algorithm over a reverse-postorder numbering.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;

/// Immediate-dominator tree for one function. Unreachable blocks have no
/// dominator information and dominate nothing.
class DominatorTree {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::Dominators;

  /// Build for F. F must have an entry block.
  explicit DominatorTree(const Function &F);

  /// The function this tree was built for.
  [[nodiscard]] const Function &function() const { return F; }

  /// True when block A dominates block B (reflexive).
  [[nodiscard]] bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True when instruction A dominates instruction B: block dominance, or
  /// earlier position within the same block. Not reflexive at the
  /// instruction level (an instruction does not dominate itself).
  [[nodiscard]] bool dominates(const Instruction *A,
                               const Instruction *B) const;

  /// Immediate dominator of BB (null for the entry and unreachable blocks).
  [[nodiscard]] const BasicBlock *idom(const BasicBlock *BB) const;

  /// True when BB is reachable from the entry.
  [[nodiscard]] bool isReachable(const BasicBlock *BB) const;

  /// Blocks in reverse postorder (reachable blocks only).
  [[nodiscard]] const std::vector<const BasicBlock *> &rpo() const {
    return RPO;
  }

  /// Structural equality against another tree over the same function
  /// (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const DominatorTree &Other) const {
    return &F == &Other.F && RPO == Other.RPO && IDom == Other.IDom;
  }

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  [[nodiscard]] int indexOf(const BasicBlock *BB) const;

  const Function &F;
  std::vector<const BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, int> RPOIndex;
  std::vector<int> IDom; // indexed by RPO position; -1 for entry
};

} // namespace codesign::analysis
