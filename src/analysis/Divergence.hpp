//===- analysis/Divergence.hpp - Thread/team uniformity dataflow -----------===//
//
// Classifies every SSA value of a function on a three-point uniformity
// lattice (league-uniform < team-uniform < divergent) and every basic block
// as uniformly-executed or divergence-guarded. Divergence seeds are the
// per-thread intrinsics (ThreadId, divergent NativeOps) plus anything whose
// contents the analysis cannot prove identical across threads (loads,
// atomics, per-thread allocations). Control-induced divergence propagates
// through the CFG with the standard sync-dependence construction: a branch
// on a divergent condition makes every block between the branch and its
// immediate post-dominator divergence-guarded, and phis that merge paths
// from such regions become divergent values.
//
// This is the precondition checker the paper's aligned-execution reasoning
// (Section IV-C) leaves implicit: an aligned barrier is only meaningful in
// blocks all threads of the team execute together, i.e. blocks this
// analysis reports as uniform.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/PostDominators.hpp"
#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

/// Uniformity lattice. Ordered: joining two classifications takes the
/// numerically larger one.
enum class Uniformity : std::uint8_t {
  League,   ///< Same value for every thread of every team.
  Team,     ///< Same value for every thread within one team.
  Divergent ///< May differ between threads of the same team.
};

/// Printable lattice element name.
constexpr std::string_view uniformityName(Uniformity U) {
  switch (U) {
  case Uniformity::League:
    return "league-uniform";
  case Uniformity::Team:
    return "team-uniform";
  case Uniformity::Divergent:
    return "divergent";
  }
  return "?";
}

/// Thread-uniformity classification for one function. Arguments are treated
/// as team-uniform: exact for kernels (launch arguments are identical for
/// every thread) and an assumed-uniform calling context for helpers, which
/// can only under-report divergence, never invent it.
class DivergenceAnalysis {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::Divergence;

  /// Build for F using its post-dominator tree (not retained afterwards).
  DivergenceAnalysis(const ir::Function &F, const PostDominatorTree &PDT);

  /// Convenience constructor computing a private post-dominator tree.
  /// Execution-side consumers (the bytecode emitter) have no
  /// AnalysisManager to borrow one from.
  explicit DivergenceAnalysis(const ir::Function &F);

  /// The function this analysis describes.
  [[nodiscard]] const ir::Function &function() const { return F; }

  /// Lattice classification of V (League for constants, globals and other
  /// values with no per-thread component).
  [[nodiscard]] Uniformity uniformity(const ir::Value *V) const;

  /// True when V may differ between threads of a team.
  [[nodiscard]] bool isDivergent(const ir::Value *V) const {
    return uniformity(V) == Uniformity::Divergent;
  }
  /// True when every thread of a team sees the same value for V.
  [[nodiscard]] bool isUniform(const ir::Value *V) const {
    return !isDivergent(V);
  }

  /// True when BB executes under divergent control: some threads of the
  /// team may run it while others do not (or take a different path).
  /// Unreachable blocks report false — the verifier rejects barriers there
  /// and nothing else consults them.
  [[nodiscard]] bool isDivergentBlock(const ir::BasicBlock *BB) const {
    return DivergentBlocks.count(BB) != 0;
  }

  /// Effective uniformity of *executing* instruction I: its value
  /// classification joined with the control divergence of its block. An
  /// instruction in a divergence-guarded block reports Divergent even when
  /// its value would be uniform — some threads of the team may not execute
  /// that dynamic instance at all. This is the per-instruction oracle the
  /// bytecode tier's warp-uniform execution consumes: only instructions
  /// reporting Team or League here may run once per warp with the result
  /// broadcast to all lanes.
  [[nodiscard]] Uniformity
  instructionUniformity(const ir::Instruction *I) const;

  /// True when I both computes a team-uniform value and executes under
  /// uniform control, i.e. one execution per warp observes and produces
  /// exactly what every lane would.
  [[nodiscard]] bool isWarpUniformInstruction(const ir::Instruction *I) const {
    return instructionUniformity(I) != Uniformity::Divergent;
  }

  /// The divergent branch (a CondBr terminator) that guards BB, or null
  /// when BB is uniformly executed. When several branches guard BB, an
  /// arbitrary deterministic one is reported.
  [[nodiscard]] const ir::Instruction *
  divergenceCause(const ir::BasicBlock *BB) const;

  /// Chain of values from V back to the divergence seed that made it
  /// divergent (V first, seed last). Empty when V is uniform.
  [[nodiscard]] std::vector<const ir::Value *>
  provenance(const ir::Value *V) const;

  /// Human-readable provenance chain, e.g. "icmp %c <- threadid" — the
  /// payload of barrier-divergence remarks.
  [[nodiscard]] std::string provenanceString(const ir::Value *V) const;

  /// Structural equality against another analysis of the same function
  /// (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const DivergenceAnalysis &Other) const;

  /// Invalidation hook for the AnalysisManager.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  void compute(const PostDominatorTree &PDT);
  [[nodiscard]] Uniformity seedUniformity(const ir::Instruction *I) const;

  const ir::Function &F;
  /// Classification of every reachable instruction with a result. Values
  /// absent from the map (constants, globals, arguments, void results) get
  /// their base classification from uniformity().
  std::unordered_map<const ir::Value *, Uniformity> ValueClass;
  /// Blocks executed under divergent control.
  std::unordered_set<const ir::BasicBlock *> DivergentBlocks;
  /// Divergent branch guarding each divergent block.
  std::unordered_map<const ir::BasicBlock *, const ir::Instruction *> Cause;
  /// For each divergent value, the operand (or controlling branch
  /// condition) that made it divergent; seeds are absent.
  std::unordered_map<const ir::Value *, const ir::Value *> Why;
};

} // namespace codesign::analysis
