//===- analysis/Reachability.hpp - CFG reachability ------------------------===//
//
// Instruction-level reachability queries used by load forwarding and dead
// store elimination: "can control flow from A to B?" and "is instruction I
// on some path strictly between A and B?". The paper's Section IV-B2 uses
// exactly these deductions ("if a write cannot reach a load it will not
// affect the loaded value").
//
//===----------------------------------------------------------------------===//
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;

/// Block- and instruction-level reachability for one function.
/// Precomputes the transitive closure over blocks (functions here are small
/// post-inlining, so the dense representation is fine).
class Reachability {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::Reachability;

  explicit Reachability(const Function &F);

  /// The function this analysis was built for.
  [[nodiscard]] const Function &function() const { return F; }

  /// True when control can flow from block A to block B through one or more
  /// CFG edges (NOT reflexive unless A is on a cycle reaching itself).
  [[nodiscard]] bool blockCanReach(const BasicBlock *A,
                                   const BasicBlock *B) const;

  /// True when execution can continue from (just after) A and later execute
  /// B. Same-block: A before B, or the block lies on a cycle.
  [[nodiscard]] bool canReach(const Instruction *A,
                              const Instruction *B) const;

  /// True when I can execute strictly between A and B on some path, i.e.
  /// canReach(A, I) && canReach(I, B). A and B themselves never count.
  [[nodiscard]] bool isBetween(const Instruction *A, const Instruction *I,
                               const Instruction *B) const;

  /// Structural equality against another Reachability over the same
  /// function (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const Reachability &Other) const {
    return &F == &Other.F && Index == Other.Index && Reach == Other.Reach;
  }

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  [[nodiscard]] int indexOf(const BasicBlock *BB) const;

  const Function &F;
  std::unordered_map<const BasicBlock *, int> Index;
  std::vector<std::vector<bool>> Reach; // Reach[a][b]: edge-path a -> b
};

} // namespace codesign::analysis
