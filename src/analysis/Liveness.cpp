#include "analysis/Liveness.hpp"

#include <algorithm>

namespace codesign::analysis {

namespace {

/// A value is register-allocated when it produces a result consumed via SSA.
bool isTracked(const Value *V) {
  return V && (V->kind() == ir::ValueKind::Instruction ||
               V->kind() == ir::ValueKind::Argument);
}

} // namespace

Liveness::Liveness(const Function &F) : F(F) {
  CODESIGN_ASSERT(!F.isDeclaration(), "liveness over a declaration");
  // Iterate to a fixed point (sets only grow).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Visit blocks in reverse layout order for faster convergence.
    const auto &Blocks = F.blocks();
    for (auto It = Blocks.rbegin(); It != Blocks.rend(); ++It) {
      const BasicBlock *BB = It->get();
      auto &Out = LiveOutMap[BB];
      // liveOut = union over successors of (liveIn minus their phi defs,
      // plus their phi incomings for this block).
      std::unordered_set<const Value *> NewOut;
      for (const BasicBlock *S : BB->successors()) {
        for (const Value *V : LiveInMap[S])
          NewOut.insert(V);
        for (std::size_t I = 0; I < S->size(); ++I) {
          const Instruction *Phi = S->inst(I);
          if (Phi->opcode() != ir::Opcode::Phi)
            break;
          NewOut.erase(Phi);
          if (const Value *In = Phi->incomingFor(BB))
            if (isTracked(In))
              NewOut.insert(In);
        }
      }
      // Remove values defined by phis of successors already handled above;
      // now walk backwards through the block.
      std::unordered_set<const Value *> Live = NewOut;
      for (std::size_t I = BB->size(); I-- > 0;) {
        const Instruction *Inst = BB->inst(I);
        if (!Inst->type().isVoid())
          Live.erase(Inst);
        if (Inst->opcode() == ir::Opcode::Phi)
          continue; // phi operands are live-out of predecessors, not here
        for (unsigned Op = 0; Op < Inst->numOperands(); ++Op)
          if (isTracked(Inst->operand(Op)))
            Live.insert(Inst->operand(Op));
      }
      auto &In = LiveInMap[BB];
      if (NewOut.size() != Out.size() || Live.size() != In.size() ||
          NewOut != Out || Live != In) {
        Out = std::move(NewOut);
        In = std::move(Live);
        Changed = true;
      }
    }
  }

  // Compute the peak: walk each block backwards tracking the live set size.
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    std::unordered_set<const Value *> Live = LiveOutMap[BB];
    MaxLive = std::max(MaxLive, static_cast<unsigned>(Live.size()));
    for (std::size_t I = BB->size(); I-- > 0;) {
      const Instruction *Inst = BB->inst(I);
      if (!Inst->type().isVoid())
        Live.erase(Inst);
      if (Inst->opcode() != ir::Opcode::Phi)
        for (unsigned Op = 0; Op < Inst->numOperands(); ++Op)
          if (isTracked(Inst->operand(Op)))
            Live.insert(Inst->operand(Op));
      MaxLive = std::max(MaxLive, static_cast<unsigned>(Live.size()));
    }
  }
}

const std::unordered_set<const Value *> &
Liveness::liveIn(const BasicBlock *BB) const {
  auto It = LiveInMap.find(BB);
  CODESIGN_ASSERT(It != LiveInMap.end(), "block not analyzed");
  return It->second;
}

const std::unordered_set<const Value *> &
Liveness::liveOut(const BasicBlock *BB) const {
  auto It = LiveOutMap.find(BB);
  CODESIGN_ASSERT(It != LiveOutMap.end(), "block not analyzed");
  return It->second;
}

unsigned estimateRegisters(const Function &Kernel) {
  constexpr unsigned BaseRegisters = 8;
  Liveness L(Kernel);
  return BaseRegisters + L.maxLive();
}

} // namespace codesign::analysis
