//===- analysis/CallGraph.hpp - Direct call graph ---------------------------===//
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/Preserved.hpp"
#include "ir/Module.hpp"

namespace codesign::analysis {

using ir::Function;
using ir::Instruction;
using ir::Module;

/// Direct-call graph over a module. Indirect calls are recorded as "unknown
/// callee" flags on the caller (the paper's analyses must account for
/// unknown callers/callees; so do ours).
class CallGraph {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::CallGraph;

  explicit CallGraph(const Module &M);

  /// Functions directly called by F (deduplicated, deterministic order).
  [[nodiscard]] const std::vector<Function *> &callees(const Function *F) const;
  /// Functions that directly call F.
  [[nodiscard]] const std::vector<Function *> &callers(const Function *F) const;
  /// True when F contains at least one indirect call.
  [[nodiscard]] bool hasUnknownCallee(const Function *F) const;
  /// True when F's address is taken (stored / passed), so it may be called
  /// indirectly from anywhere.
  [[nodiscard]] bool hasUnknownCallers(const Function *F) const;

  /// Functions reachable from any kernel via direct calls; address-taken
  /// functions are also treated as reachable roots (they may be invoked
  /// through the state machine's work-function pointer).
  [[nodiscard]] const std::set<Function *> &reachableFromKernels() const {
    return Reachable;
  }

  /// Structural equality against another CallGraph over the same module
  /// (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const CallGraph &Other) const {
    return Callees == Other.Callees && Callers == Other.Callers &&
           UnknownCallee == Other.UnknownCallee &&
           AddressTaken == Other.AddressTaken && Reachable == Other.Reachable;
  }

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  std::unordered_map<const Function *, std::vector<Function *>> Callees;
  std::unordered_map<const Function *, std::vector<Function *>> Callers;
  std::unordered_map<const Function *, bool> UnknownCallee;
  std::unordered_map<const Function *, bool> AddressTaken;
  std::set<Function *> Reachable;
  std::vector<Function *> Empty;
};

} // namespace codesign::analysis
