//===- analysis/LoopInfo.hpp - Natural loop detection ----------------------===//
//
// Natural loops from back edges: an edge latch -> header where the header
// dominates the latch. The loop body is every block that reaches a latch
// without passing through the header. Loops sharing a header are merged
// (the classical definition). Nesting is exposed as a per-block depth
// rather than a loop tree — the paper's reasoning about loop-carried
// runtime state (§IV-B, Fig. 11) needs "is this inside a loop, and how
// deep", not the full forest.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/Dominators.hpp"
#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

/// One natural loop. Block lists are in reverse postorder, so Blocks.front()
/// is always the header.
struct Loop {
  const BasicBlock *Header = nullptr;
  std::vector<const BasicBlock *> Blocks;  ///< Header first, then body (RPO).
  std::vector<const BasicBlock *> Latches; ///< Sources of back edges (RPO).

  [[nodiscard]] bool contains(const BasicBlock *BB) const;
};

/// Natural loops of one function.
class LoopInfo {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::Loops;

  /// Build using an existing dominator tree over the same function (the
  /// AnalysisManager path — dominators are cached separately).
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// Convenience: build a private dominator tree first.
  explicit LoopInfo(const Function &F) : LoopInfo(F, DominatorTree(F)) {}

  /// The function this analysis was built for.
  [[nodiscard]] const Function &function() const { return F; }

  /// All loops, ordered by header position in RPO (outer loops first when
  /// nested, since an outer header precedes its inner headers in RPO).
  [[nodiscard]] const std::vector<Loop> &loops() const { return Loops; }

  /// The innermost (smallest) loop containing BB, or null.
  [[nodiscard]] const Loop *loopFor(const BasicBlock *BB) const;

  /// Number of loops containing BB (0 outside any loop).
  [[nodiscard]] unsigned depth(const BasicBlock *BB) const;

  /// Structural equality against another LoopInfo over the same function.
  [[nodiscard]] bool equivalentTo(const LoopInfo &Other) const;

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  const Function &F;
  std::vector<Loop> Loops;
  // Innermost loop index per block; blocks outside loops are absent.
  std::unordered_map<const BasicBlock *, unsigned> InnermostLoop;
  std::unordered_map<const BasicBlock *, unsigned> Depth;
};

} // namespace codesign::analysis
