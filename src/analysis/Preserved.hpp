//===- analysis/Preserved.hpp - Analysis identity & preservation sets ------===//
//
// The vocabulary shared between the analyses and the pass manager: every
// cacheable analysis has an AnalysisKind, and every pass that changes IR
// reports a PreservedAnalyses set describing which cached results survive
// the change. Mirrors LLVM's PreservedAnalyses, sized for this project: a
// fixed bitmask over the eight analyses the optimizer caches (paper §IV
// runs "multiple times" inside a pass manager precisely because analyses
// are cached and invalidated, not recomputed per pass).
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string_view>

namespace codesign::analysis {

/// Identity of one cacheable analysis. Function-scoped analyses are keyed
/// by (Function, kind) in the AnalysisManager; CallGraph is module-scoped.
enum class AnalysisKind : unsigned {
  Dominators,     ///< analysis::DominatorTree
  PostDominators, ///< analysis::PostDominatorTree
  Reachability,   ///< analysis::Reachability
  Liveness,       ///< analysis::Liveness
  Loops,          ///< analysis::LoopInfo
  Accesses,       ///< opt::AccessAnalysis (field-sensitive, §IV-B1)
  Divergence,     ///< analysis::DivergenceAnalysis (thread uniformity)
  CallGraph,      ///< analysis::CallGraph (module-scoped)
};

/// Number of AnalysisKind values (array sizing).
inline constexpr unsigned NumAnalysisKinds = 8;

/// Stable dotted-counter-friendly name ("dominators", "callgraph", ...).
constexpr std::string_view analysisName(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::Dominators:
    return "dominators";
  case AnalysisKind::PostDominators:
    return "postdominators";
  case AnalysisKind::Reachability:
    return "reachability";
  case AnalysisKind::Liveness:
    return "liveness";
  case AnalysisKind::Loops:
    return "loops";
  case AnalysisKind::Accesses:
    return "accesses";
  case AnalysisKind::Divergence:
    return "divergence";
  case AnalysisKind::CallGraph:
    return "callgraph";
  }
  return "unknown";
}

/// The set of analyses a pass left intact. Passes return one of these from
/// every invocation; the pass manager invalidates whatever is absent.
class PreservedAnalyses {
public:
  /// Nothing survives (the safe default for structural passes).
  static PreservedAnalyses none() { return PreservedAnalyses(0); }
  /// Everything survives (the implicit claim of a no-change run).
  static PreservedAnalyses all() { return PreservedAnalyses(AllMask); }
  /// The CFG-shape analyses survive: dominators, post-dominators,
  /// reachability and loops. The claim of passes that rewrite values or
  /// erase non-terminator instructions without touching block structure.
  /// Divergence is deliberately absent: it depends on values, not just on
  /// block shape, so value rewrites can change uniformity.
  static PreservedAnalyses cfg() {
    return PreservedAnalyses(bit(AnalysisKind::Dominators) |
                             bit(AnalysisKind::PostDominators) |
                             bit(AnalysisKind::Reachability) |
                             bit(AnalysisKind::Loops));
  }

  /// Mark one analysis as surviving.
  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= bit(K);
    return *this;
  }
  /// Mark one analysis as invalidated.
  PreservedAnalyses &abandon(AnalysisKind K) {
    Mask &= ~bit(K);
    return *this;
  }

  /// True when the given analysis survives the pass.
  [[nodiscard]] bool isPreserved(AnalysisKind K) const {
    return (Mask & bit(K)) != 0;
  }
  /// True when every analysis survives.
  [[nodiscard]] bool preservedAll() const { return Mask == AllMask; }
  /// True when no analysis survives.
  [[nodiscard]] bool preservedNone() const { return Mask == 0; }

  friend bool operator==(const PreservedAnalyses &A,
                         const PreservedAnalyses &B) {
    return A.Mask == B.Mask;
  }

private:
  explicit PreservedAnalyses(unsigned Mask) : Mask(Mask) {}
  static constexpr unsigned bit(AnalysisKind K) {
    return 1U << static_cast<unsigned>(K);
  }
  static constexpr unsigned AllMask = (1U << NumAnalysisKinds) - 1;

  unsigned Mask;
};

} // namespace codesign::analysis
