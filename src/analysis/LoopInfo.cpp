#include "analysis/LoopInfo.hpp"

#include <algorithm>
#include <unordered_set>

namespace codesign::analysis {

bool Loop::contains(const BasicBlock *BB) const {
  return std::find(Blocks.begin(), Blocks.end(), BB) != Blocks.end();
}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) : F(F) {
  CODESIGN_ASSERT(&DT.function() == &F,
                  "loop info built with a foreign dominator tree");

  std::unordered_map<const BasicBlock *, int> RPOIndex;
  for (std::size_t I = 0; I < DT.rpo().size(); ++I)
    RPOIndex[DT.rpo()[I]] = static_cast<int>(I);

  // Back edges in RPO order of the latch, grouped by header.
  std::unordered_map<const BasicBlock *, std::vector<const BasicBlock *>>
      LatchesOf;
  std::vector<const BasicBlock *> Headers;
  for (const BasicBlock *BB : DT.rpo())
    for (const BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB)) {
        auto &L = LatchesOf[Succ];
        if (L.empty())
          Headers.push_back(Succ);
        L.push_back(BB);
      }
  std::sort(Headers.begin(), Headers.end(),
            [&](const BasicBlock *A, const BasicBlock *B) {
              return RPOIndex[A] < RPOIndex[B];
            });

  for (const BasicBlock *Header : Headers) {
    Loop L;
    L.Header = Header;
    L.Latches = LatchesOf[Header];

    // Body: blocks that reach a latch backwards without crossing the header.
    std::unordered_set<const BasicBlock *> Body{Header};
    std::vector<const BasicBlock *> Work;
    for (const BasicBlock *Latch : L.Latches)
      if (Body.insert(Latch).second)
        Work.push_back(Latch);
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      for (const BasicBlock *Pred : BB->predecessors())
        if (DT.isReachable(Pred) && Body.insert(Pred).second)
          Work.push_back(Pred);
    }

    L.Blocks.assign(Body.begin(), Body.end());
    std::sort(L.Blocks.begin(), L.Blocks.end(),
              [&](const BasicBlock *A, const BasicBlock *B) {
                return RPOIndex[A] < RPOIndex[B];
              });
    std::sort(L.Latches.begin(), L.Latches.end(),
              [&](const BasicBlock *A, const BasicBlock *B) {
                return RPOIndex[A] < RPOIndex[B];
              });
    Loops.push_back(std::move(L));
  }

  for (unsigned I = 0; I < Loops.size(); ++I)
    for (const BasicBlock *BB : Loops[I].Blocks) {
      ++Depth[BB];
      auto It = InnermostLoop.find(BB);
      if (It == InnermostLoop.end() ||
          Loops[I].Blocks.size() < Loops[It->second].Blocks.size())
        InnermostLoop[BB] = I;
    }
}

const Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : &Loops[It->second];
}

unsigned LoopInfo::depth(const BasicBlock *BB) const {
  auto It = Depth.find(BB);
  return It == Depth.end() ? 0 : It->second;
}

bool LoopInfo::equivalentTo(const LoopInfo &Other) const {
  if (&F != &Other.F || Loops.size() != Other.Loops.size())
    return false;
  for (std::size_t I = 0; I < Loops.size(); ++I) {
    const Loop &A = Loops[I], &B = Other.Loops[I];
    if (A.Header != B.Header || A.Blocks != B.Blocks || A.Latches != B.Latches)
      return false;
  }
  return true;
}

} // namespace codesign::analysis
