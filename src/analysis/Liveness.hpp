//===- analysis/Liveness.hpp - SSA liveness & register estimation ---------===//
//
// Backward liveness over SSA values. The register estimate — the maximum
// number of simultaneously live values at any program point — stands in for
// the "#Regs" column of the paper's Figure 11: the runtime state the
// optimizer fails to eliminate shows up as loop-carried and cross-barrier
// live values, which is precisely how the paper explains its register-count
// reductions ("they reduce the live register count as there is no loop
// carried state").
//
//===----------------------------------------------------------------------===//
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Value;

/// Per-function liveness information.
class Liveness {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::Liveness;

  explicit Liveness(const Function &F);

  /// The function this analysis was built for.
  [[nodiscard]] const Function &function() const { return F; }

  /// Values live on entry to BB.
  [[nodiscard]] const std::unordered_set<const Value *> &
  liveIn(const BasicBlock *BB) const;

  /// Values live on exit from BB.
  [[nodiscard]] const std::unordered_set<const Value *> &
  liveOut(const BasicBlock *BB) const;

  /// Maximum number of simultaneously live SSA values across the function.
  [[nodiscard]] unsigned maxLive() const { return MaxLive; }

  /// Structural equality against another Liveness over the same function
  /// (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const Liveness &Other) const {
    return &F == &Other.F && MaxLive == Other.MaxLive &&
           LiveInMap == Other.LiveInMap && LiveOutMap == Other.LiveOutMap;
  }

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  const Function &F;
  std::unordered_map<const BasicBlock *, std::unordered_set<const Value *>>
      LiveInMap;
  std::unordered_map<const BasicBlock *, std::unordered_set<const Value *>>
      LiveOutMap;
  unsigned MaxLive = 0;
};

/// Estimated hardware register count for a kernel: a fixed base (ABI and
/// address registers) plus the liveness peak. Only relative movement across
/// build configurations is meaningful, as in the paper.
unsigned estimateRegisters(const Function &Kernel);

} // namespace codesign::analysis
