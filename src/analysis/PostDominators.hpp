//===- analysis/PostDominators.hpp - Post-dominator tree -------------------===//
//
// Post-dominance over one function: A post-dominates B when every path from
// B to function exit passes through A. Computed with the same
// Cooper/Harvey/Kennedy iteration as the dominator tree, run over the
// reverse CFG with a virtual exit joining every exit block (return or
// unreachable terminator). Blocks on infinite loops reach no exit and have
// no post-dominator information.
//
// The paper's §IV-C aligned-execution reasoning is phrased in terms of
// blocks executed by all threads together; post-dominance of the kernel
// exit is the standard way to prove that, and the pass-manager caches this
// tree alongside the dominator tree so future passes get it for free.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/Preserved.hpp"
#include "ir/Function.hpp"

namespace codesign::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;

/// Immediate-post-dominator tree for one function.
class PostDominatorTree {
public:
  static constexpr AnalysisKind Kind = AnalysisKind::PostDominators;

  /// Build for F. F must have an entry block.
  explicit PostDominatorTree(const Function &F);

  /// The function this tree was built for.
  [[nodiscard]] const Function &function() const { return F; }

  /// True when block A post-dominates block B (reflexive). False whenever
  /// either block cannot reach an exit.
  [[nodiscard]] bool postDominates(const BasicBlock *A,
                                   const BasicBlock *B) const;

  /// True when instruction A post-dominates instruction B: block
  /// post-dominance, or later position within the same block. Not
  /// reflexive at the instruction level.
  [[nodiscard]] bool postDominates(const Instruction *A,
                                   const Instruction *B) const;

  /// Immediate post-dominator of BB. Null for exit blocks (their immediate
  /// post-dominator is the virtual exit) and for blocks that reach no exit.
  [[nodiscard]] const BasicBlock *ipdom(const BasicBlock *BB) const;

  /// True when some path from BB reaches an exit block.
  [[nodiscard]] bool reachesExit(const BasicBlock *BB) const;

  /// Blocks in reverse postorder of the *reverse* CFG (exit-reaching blocks
  /// only; exits come first).
  [[nodiscard]] const std::vector<const BasicBlock *> &order() const {
    return Order;
  }

  /// Structural equality against another tree over the same function
  /// (differential checking of cached results).
  [[nodiscard]] bool equivalentTo(const PostDominatorTree &Other) const;

  /// Invalidation hook: true when a pass reporting PA requires this
  /// analysis to be recomputed.
  [[nodiscard]] bool invalidatedBy(const PreservedAnalyses &PA) const {
    return !PA.isPreserved(Kind);
  }

private:
  [[nodiscard]] int indexOf(const BasicBlock *BB) const;

  const Function &F;
  std::vector<const BasicBlock *> Order;
  std::unordered_map<const BasicBlock *, int> OrderIndex;
  // Indexed by Order position. -1 = virtual exit (the block is an exit or
  // all its paths diverge directly into the virtual exit's children).
  std::vector<int> IPDom;
};

} // namespace codesign::analysis
