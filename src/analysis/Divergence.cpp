//===- analysis/Divergence.cpp - Thread/team uniformity dataflow -----------===//
#include "analysis/Divergence.hpp"

#include <algorithm>

#include "ir/Global.hpp"

namespace codesign::analysis {

using namespace ir;

DivergenceAnalysis::DivergenceAnalysis(const Function &F,
                                       const PostDominatorTree &PDT)
    : F(F) {
  CODESIGN_ASSERT(!F.isDeclaration(), "divergence analysis on declaration");
  CODESIGN_ASSERT(&PDT.function() == &F, "post-dominator tree mismatch");
  compute(PDT);
}

DivergenceAnalysis::DivergenceAnalysis(const Function &F)
    : DivergenceAnalysis(F, PostDominatorTree(F)) {}

Uniformity
DivergenceAnalysis::instructionUniformity(const Instruction *I) const {
  const Uniformity ValueU = uniformity(I);
  if (I->parent() && isDivergentBlock(I->parent()))
    return Uniformity::Divergent;
  return ValueU;
}

Uniformity DivergenceAnalysis::uniformity(const Value *V) const {
  if (auto It = ValueClass.find(V); It != ValueClass.end())
    return It->second;
  // Base classifications for non-instruction values. Constants, globals
  // (their address) and function addresses are identical everywhere;
  // arguments are uniform by the calling-context assumption documented in
  // the header.
  if (isa<Argument>(V))
    return Uniformity::Team;
  return Uniformity::League;
}

const Instruction *
DivergenceAnalysis::divergenceCause(const BasicBlock *BB) const {
  auto It = Cause.find(BB);
  return It == Cause.end() ? nullptr : It->second;
}

std::vector<const Value *>
DivergenceAnalysis::provenance(const Value *V) const {
  std::vector<const Value *> Chain;
  const Value *Cur = V;
  while (Cur && uniformity(Cur) == Uniformity::Divergent) {
    // Cycles through phis are possible; stop at the first repeat.
    if (std::find(Chain.begin(), Chain.end(), Cur) != Chain.end())
      break;
    Chain.push_back(Cur);
    auto It = Why.find(Cur);
    Cur = It == Why.end() ? nullptr : It->second;
  }
  return Chain;
}

std::string DivergenceAnalysis::provenanceString(const Value *V) const {
  std::string Out;
  for (const Value *Link : provenance(V)) {
    if (!Out.empty())
      Out += " <- ";
    if (const auto *I = dynCast<Instruction>(Link)) {
      Out += opcodeName(I->opcode());
      if (!I->name().empty()) {
        Out += " %";
        Out += I->name();
      }
    } else if (!Link->name().empty()) {
      Out += Link->name();
    } else {
      Out += "value";
    }
  }
  return Out;
}

Uniformity DivergenceAnalysis::seedUniformity(const Instruction *I) const {
  switch (I->opcode()) {
  case Opcode::ThreadId:
    return Uniformity::Divergent;
  case Opcode::BlockId:
    return Uniformity::Team;
  case Opcode::BlockDim:
  case Opcode::GridDim:
  case Opcode::WarpSize:
    return Uniformity::League;
  case Opcode::Load: {
    // Memory contents are not tracked: another thread may have written a
    // different value. The one provable exception is constant memory,
    // which is immutable and device-wide.
    if (const auto *G = dynCast<GlobalVariable>(I->pointerOperand()))
      if (G->space() == AddrSpace::Constant)
        return Uniformity::League;
    return Uniformity::Divergent;
  }
  case Opcode::AtomicRMW:
  case Opcode::CmpXchg:
    // Each thread observes a different point in the modification order.
    return Uniformity::Divergent;
  case Opcode::Alloca:
  case Opcode::Malloc:
    // The pointer denotes per-thread storage.
    return Uniformity::Divergent;
  case Opcode::Call:
    // Unknown callee behaviour (calls surviving to this analysis are
    // opaque runtime entry points or indirect).
    return Uniformity::Divergent;
  case Opcode::NativeOp:
    return I->nativeFlags().Divergent ? Uniformity::Divergent
                                      : Uniformity::Team;
  default:
    // Pure dataflow: the join of the operands (computed by the caller);
    // League is the lattice bottom.
    return Uniformity::League;
  }
}

void DivergenceAnalysis::compute(const PostDominatorTree &PDT) {
  // Reachable blocks in layout order (deterministic iteration).
  std::unordered_set<const BasicBlock *> Reachable;
  {
    std::vector<const BasicBlock *> Work{F.entry()};
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!Reachable.insert(BB).second)
        continue;
      for (const BasicBlock *S : BB->successors())
        Work.push_back(S);
    }
  }

  // Seed-or-join transfer function for one instruction under the current
  // state; records provenance when the classification is divergent.
  auto classify = [&](const Instruction *I) {
    Uniformity U = seedUniformity(I);
    const Value *Reason = nullptr;
    // Seeds own their divergence; only join operands for pure dataflow ops
    // (a divergent pointer operand does not make a load "more divergent"
    // than the seed already says, but it is a better provenance link).
    for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx) {
      const Value *Op = I->operand(Idx);
      Uniformity OpU = uniformity(Op);
      if (OpU > U)
        U = OpU;
      if (!Reason && OpU == Uniformity::Divergent)
        Reason = Op;
    }
    if (I->opcode() == Opcode::Phi) {
      // A phi merging paths guarded by a divergent branch receives its
      // value from different predecessors on different threads.
      for (const BasicBlock *P : I->parent()->predecessors()) {
        const Instruction *T = P->terminator();
        const bool DivergentEdge =
            DivergentBlocks.count(P) != 0 ||
            (T && T->opcode() == Opcode::CondBr && isDivergent(T->operand(0)));
        if (DivergentEdge) {
          U = Uniformity::Divergent;
          if (!Reason) {
            const Instruction *Branch =
                DivergentBlocks.count(P) ? divergenceCause(P) : T;
            if (Branch && Branch->numOperands() > 0)
              Reason = Branch->operand(0);
          }
          break;
        }
      }
    }
    return std::pair(U, Reason);
  };

  // Outer fixpoint: value uniformity and block divergence feed each other
  // (divergent values make branches divergent; divergent branches make
  // phis divergent). Both lattices only grow, so this terminates.
  bool OuterChanged = true;
  while (OuterChanged) {
    OuterChanged = false;

    // Inner fixpoint over values (phis form cycles).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F.blocks()) {
        if (!Reachable.count(BB.get()))
          continue;
        for (const auto &I : BB->instructions()) {
          if (I->type().isVoid())
            continue;
          auto [U, Reason] = classify(I.get());
          auto It = ValueClass.find(I.get());
          if (It == ValueClass.end() || It->second < U) {
            ValueClass[I.get()] = U;
            if (U == Uniformity::Divergent && Reason)
              Why[I.get()] = Reason;
            Changed = true;
          }
        }
      }
    }

    // Mark the influence region of every divergent branch: all blocks
    // strictly between the branch and its immediate post-dominator (where
    // the threads of the team rejoin). A branch that reaches no common
    // rejoin point (no ipdom) taints everything it reaches.
    for (const auto &BB : F.blocks()) {
      if (!Reachable.count(BB.get()))
        continue;
      const Instruction *T = BB->terminator();
      if (!T || T->opcode() != Opcode::CondBr || !isDivergent(T->operand(0)))
        continue;
      const BasicBlock *Join = PDT.ipdom(BB.get());
      auto Succs = BB->successors();
      std::vector<const BasicBlock *> Work(Succs.begin(), Succs.end());
      std::unordered_set<const BasicBlock *> Seen;
      while (!Work.empty()) {
        const BasicBlock *Cur = Work.back();
        Work.pop_back();
        if (Cur == Join || !Seen.insert(Cur).second)
          continue;
        if (DivergentBlocks.insert(Cur).second) {
          Cause[Cur] = T;
          OuterChanged = true;
        }
        for (const BasicBlock *S : Cur->successors())
          Work.push_back(S);
      }
    }
  }
}

bool DivergenceAnalysis::equivalentTo(const DivergenceAnalysis &Other) const {
  if (&F != &Other.F)
    return false;
  if (ValueClass.size() != Other.ValueClass.size() ||
      DivergentBlocks.size() != Other.DivergentBlocks.size())
    return false;
  for (const auto &[V, U] : ValueClass) {
    auto It = Other.ValueClass.find(V);
    if (It == Other.ValueClass.end() || It->second != U)
      return false;
  }
  for (const BasicBlock *BB : DivergentBlocks)
    if (!Other.DivergentBlocks.count(BB))
      return false;
  return true;
}

} // namespace codesign::analysis
