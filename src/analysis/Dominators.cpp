#include "analysis/Dominators.hpp"

#include <algorithm>

namespace codesign::analysis {

DominatorTree::DominatorTree(const Function &F) : F(F) {
  CODESIGN_ASSERT(!F.isDeclaration(), "dominator tree over a declaration");

  // Depth-first postorder, then reverse.
  std::vector<const BasicBlock *> PostOrder;
  std::unordered_map<const BasicBlock *, int> State; // 0 new, 1 open, 2 done
  std::vector<std::pair<const BasicBlock *, std::size_t>> Stack;
  Stack.emplace_back(F.entry(), 0);
  State[F.entry()] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      const BasicBlock *S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[BB] = 2;
      PostOrder.push_back(BB);
      Stack.pop_back();
    }
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (std::size_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = static_cast<int>(I);

  // Cooper-Harvey-Kennedy iteration.
  IDom.assign(RPO.size(), -1);
  if (RPO.empty())
    return;
  IDom[0] = 0; // entry's idom is itself during iteration
  bool Changed = true;
  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = IDom[static_cast<std::size_t>(A)];
      while (B > A)
        B = IDom[static_cast<std::size_t>(B)];
    }
    return A;
  };
  while (Changed) {
    Changed = false;
    for (std::size_t I = 1; I < RPO.size(); ++I) {
      int NewIDom = -1;
      for (const BasicBlock *P : RPO[I]->predecessors()) {
        auto It = RPOIndex.find(P);
        if (It == RPOIndex.end())
          continue; // unreachable predecessor
        const int PI = It->second;
        if (IDom[static_cast<std::size_t>(PI)] == -1 && PI != 0)
          continue; // not yet processed
        NewIDom = (NewIDom == -1) ? PI : intersect(NewIDom, PI);
      }
      if (NewIDom != -1 && IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[0] = -1; // restore: entry has no idom
}

int DominatorTree::indexOf(const BasicBlock *BB) const {
  auto It = RPOIndex.find(BB);
  return It == RPOIndex.end() ? -1 : It->second;
}

bool DominatorTree::isReachable(const BasicBlock *BB) const {
  return indexOf(BB) >= 0;
}

const BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  const int I = indexOf(BB);
  if (I <= 0)
    return nullptr;
  const int D = IDom[static_cast<std::size_t>(I)];
  return D < 0 ? nullptr : RPO[static_cast<std::size_t>(D)];
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  int AI = indexOf(A), BI = indexOf(B);
  if (AI < 0 || BI < 0)
    return false;
  while (BI > AI)
    BI = IDom[static_cast<std::size_t>(BI)];
  return BI == AI;
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  const BasicBlock *ABB = A->parent();
  const BasicBlock *BBB = B->parent();
  CODESIGN_ASSERT(ABB && BBB, "detached instruction in dominance query");
  if (ABB == BBB)
    return ABB->indexOf(A) < BBB->indexOf(B);
  return dominates(ABB, BBB);
}

} // namespace codesign::analysis
