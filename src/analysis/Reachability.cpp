#include "analysis/Reachability.hpp"

namespace codesign::analysis {

Reachability::Reachability(const Function &F) : F(F) {
  const auto &Blocks = F.blocks();
  const std::size_t N = Blocks.size();
  for (std::size_t I = 0; I < N; ++I)
    Index[Blocks[I].get()] = static_cast<int>(I);
  Reach.assign(N, std::vector<bool>(N, false));
  // BFS from each block over successor edges.
  for (std::size_t Start = 0; Start < N; ++Start) {
    std::vector<const BasicBlock *> Work;
    for (BasicBlock *S : Blocks[Start]->successors())
      Work.push_back(S);
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      const int BI = Index.at(BB);
      if (Reach[Start][static_cast<std::size_t>(BI)])
        continue;
      Reach[Start][static_cast<std::size_t>(BI)] = true;
      for (BasicBlock *S : BB->successors())
        Work.push_back(S);
    }
  }
}

int Reachability::indexOf(const BasicBlock *BB) const {
  auto It = Index.find(BB);
  CODESIGN_ASSERT(It != Index.end(), "block not in function");
  return It->second;
}

bool Reachability::blockCanReach(const BasicBlock *A,
                                 const BasicBlock *B) const {
  return Reach[static_cast<std::size_t>(indexOf(A))]
              [static_cast<std::size_t>(indexOf(B))];
}

bool Reachability::canReach(const Instruction *A, const Instruction *B) const {
  const BasicBlock *ABB = A->parent();
  const BasicBlock *BBB = B->parent();
  CODESIGN_ASSERT(ABB && BBB, "detached instruction in reachability query");
  if (ABB == BBB) {
    if (ABB->indexOf(A) < BBB->indexOf(B))
      return true;
    // B earlier (or equal): reachable only by looping back to the block.
    return blockCanReach(ABB, ABB);
  }
  return blockCanReach(ABB, BBB);
}

bool Reachability::isBetween(const Instruction *A, const Instruction *I,
                             const Instruction *B) const {
  if (I == A || I == B)
    return false;
  return canReach(A, I) && canReach(I, B);
}

} // namespace codesign::analysis
