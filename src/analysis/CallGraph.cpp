#include "analysis/CallGraph.hpp"

#include <algorithm>

namespace codesign::analysis {

CallGraph::CallGraph(const Module &M) {
  for (const auto &F : M.functions()) {
    UnknownCallee[F.get()] = false;
    // Address taken: any use of the function value that is not the callee
    // operand of a direct call.
    bool Taken = false;
    for (const ir::Use &U : F->asValue()->uses()) {
      if (U.User->opcode() == ir::Opcode::Call && U.OpIdx == 0)
        continue;
      Taken = true;
      break;
    }
    AddressTaken[F.get()] = Taken;
  }

  for (const auto &F : M.functions()) {
    std::set<Function *> Seen;
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->opcode() != ir::Opcode::Call)
          continue;
        if (Function *Callee = I->calledFunction()) {
          if (Seen.insert(Callee).second) {
            Callees[F.get()].push_back(Callee);
            Callers[Callee].push_back(F.get());
          }
        } else {
          UnknownCallee[F.get()] = true;
        }
      }
    }
  }

  // Reachability from kernels (+ address-taken roots).
  std::vector<Function *> Work;
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel) || AddressTaken[F.get()])
      Work.push_back(F.get());
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    if (!Reachable.insert(F).second)
      continue;
    auto It = Callees.find(F);
    if (It != Callees.end())
      for (Function *C : It->second)
        Work.push_back(C);
  }
}

const std::vector<Function *> &CallGraph::callees(const Function *F) const {
  auto It = Callees.find(F);
  return It == Callees.end() ? Empty : It->second;
}

const std::vector<Function *> &CallGraph::callers(const Function *F) const {
  auto It = Callers.find(F);
  return It == Callers.end() ? Empty : It->second;
}

bool CallGraph::hasUnknownCallee(const Function *F) const {
  auto It = UnknownCallee.find(F);
  return It != UnknownCallee.end() && It->second;
}

bool CallGraph::hasUnknownCallers(const Function *F) const {
  auto It = AddressTaken.find(F);
  return (It != AddressTaken.end() && It->second) ||
         !F->hasAttr(ir::FnAttr::Internal);
}

} // namespace codesign::analysis
