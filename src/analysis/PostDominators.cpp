#include "analysis/PostDominators.hpp"

namespace codesign::analysis {

PostDominatorTree::PostDominatorTree(const Function &F) : F(F) {
  CODESIGN_ASSERT(!F.isDeclaration(), "post-dominator tree over a declaration");

  // Exit blocks: a terminator with no successors (Ret / Unreachable). They
  // are the virtual exit's predecessors in the reverse CFG.
  std::vector<const BasicBlock *> Exits;
  for (const auto &BB : F.blocks())
    if (BB->terminator() && BB->successors().empty())
      Exits.push_back(BB.get());

  // Depth-first postorder of the reverse CFG from the virtual exit, then
  // reverse: exit-reaching blocks only, exits first.
  std::vector<const BasicBlock *> PostOrder;
  std::unordered_map<const BasicBlock *, int> State; // 0 new, 1 open, 2 done
  std::vector<std::pair<const BasicBlock *, std::size_t>> Stack;
  for (const BasicBlock *E : Exits) {
    if (State[E] != 0)
      continue;
    State[E] = 1;
    Stack.emplace_back(E, 0);
    while (!Stack.empty()) {
      auto &[BB, NextPred] = Stack.back();
      std::vector<ir::BasicBlock *> Preds = BB->predecessors();
      if (NextPred < Preds.size()) {
        const BasicBlock *P = Preds[NextPred++];
        if (State[P] == 0) {
          State[P] = 1;
          Stack.emplace_back(P, 0);
        }
      } else {
        State[BB] = 2;
        PostOrder.push_back(BB);
        Stack.pop_back();
      }
    }
  }
  Order.assign(PostOrder.rbegin(), PostOrder.rend());
  for (std::size_t I = 0; I < Order.size(); ++I)
    OrderIndex[Order[I]] = static_cast<int>(I);

  // Cooper-Harvey-Kennedy over the reverse CFG. Index -1 is the virtual
  // exit (the common ancestor of everything); -2 marks an unprocessed node.
  IPDom.assign(Order.size(), -2);
  for (const BasicBlock *E : Exits)
    IPDom[static_cast<std::size_t>(OrderIndex[E])] = -1;

  auto intersect = [&](int A, int B) {
    while (A != B) {
      // -1 (virtual exit) is everyone's ancestor; the walks below only
      // index IPDom with nonnegative values because A > B implies A >= 0.
      while (A > B)
        A = IPDom[static_cast<std::size_t>(A)];
      while (B > A)
        B = IPDom[static_cast<std::size_t>(B)];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t I = 0; I < Order.size(); ++I) {
      if (Order[I]->successors().empty())
        continue; // exit block, pinned to the virtual exit
      int NewIPDom = -2;
      for (const BasicBlock *S : Order[I]->successors()) {
        auto It = OrderIndex.find(S);
        if (It == OrderIndex.end())
          continue; // successor reaches no exit
        const int SI = It->second;
        if (IPDom[static_cast<std::size_t>(SI)] == -2)
          continue; // not yet processed
        NewIPDom = (NewIPDom == -2) ? SI : intersect(NewIPDom, SI);
      }
      if (NewIPDom != -2 && IPDom[I] != NewIPDom) {
        IPDom[I] = NewIPDom;
        Changed = true;
      }
    }
  }
}

int PostDominatorTree::indexOf(const BasicBlock *BB) const {
  auto It = OrderIndex.find(BB);
  return It == OrderIndex.end() ? -1 : It->second;
}

bool PostDominatorTree::reachesExit(const BasicBlock *BB) const {
  return indexOf(BB) >= 0;
}

const BasicBlock *PostDominatorTree::ipdom(const BasicBlock *BB) const {
  const int I = indexOf(BB);
  if (I < 0)
    return nullptr;
  const int D = IPDom[static_cast<std::size_t>(I)];
  return D < 0 ? nullptr : Order[static_cast<std::size_t>(D)];
}

bool PostDominatorTree::postDominates(const BasicBlock *A,
                                      const BasicBlock *B) const {
  int AI = indexOf(A), BI = indexOf(B);
  if (AI < 0 || BI < 0)
    return false;
  while (BI > AI)
    BI = IPDom[static_cast<std::size_t>(BI)];
  return BI == AI;
}

bool PostDominatorTree::postDominates(const Instruction *A,
                                      const Instruction *B) const {
  const BasicBlock *ABB = A->parent();
  const BasicBlock *BBB = B->parent();
  CODESIGN_ASSERT(ABB && BBB, "detached instruction in post-dominance query");
  if (ABB == BBB)
    return ABB->indexOf(A) > BBB->indexOf(B);
  return postDominates(ABB, BBB);
}

bool PostDominatorTree::equivalentTo(const PostDominatorTree &Other) const {
  return &F == &Other.F && Order == Other.Order && IPDom == Other.IPDom;
}

} // namespace codesign::analysis
