//===- exec/NativeBackend.cpp - host-compiled C++ codegen backend ----------===//
//
// The wall-clock ceiling tier: each post-optimization module is emitted as
// standalone C++ (NativeCodegen.cpp), compiled with the host toolchain into
// a shared object, and dlopen'd behind the same launch API the interpreting
// backends serve. Shared objects are cached twice — in-process per module
// content key (the frontend kernel-cache key when available, an IR-text
// hash otherwise) and on disk per (source, compiler command) hash — so a
// recompile or a rerun reuses the .so.
//
// Each lane of a team runs the compiled kernel entry on its own ucontext
// fiber; runTeam is the scheduler, replaying the interpreter's
// strict-lane-order run-to-barrier schedule (TeamExecutor::run): sweep
// lanes in thread order, run each until it returns / traps / suspends at a
// barrier, stop the team on the first trap, detect livelock, and release
// rendezvous with the debug aligned-barrier identity check. Because a
// barrier suspends the whole fiber, barriers are legal at any call depth —
// inside the old runtime's opaque entry helpers and inside outlined work
// functions reached through the state machine's indirect calls included.
//
// Everything the generated code cannot do natively calls back into the
// host through the cg_team function pointers: registered native ops (run
// against a bridged vgpu::NativeCtx with the interpreter's exact
// resolve/charge semantics), device malloc/free on the global arena,
// per-lane local-memory growth, and the barrier suspension itself.
//
//===----------------------------------------------------------------------===//
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include <dlfcn.h>
#include <ucontext.h>
#include <unistd.h>

#include "exec/Backend.hpp"
#include "exec/BuiltinBackends.hpp"
#include "exec/NativeABI.hpp"
#include "exec/NativeCodegen.hpp"
#include "ir/Printer.hpp"

namespace codesign::exec {

namespace {

namespace fs = std::filesystem;
using vgpu::DeviceAddr;
using vgpu::MemSpace;

using DriverFn = void (*)(void *);

//===----------------------------------------------------------------------===//
// Keys and small helpers
//===----------------------------------------------------------------------===//

std::uint64_t fnv1a(std::string_view S) {
  std::uint64_t H = 1469598103934665603ULL;
  for (const char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

std::string hex64(std::uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// In-process identity of a module's generated code. Prefer the frontend
/// kernel-cache key (stamped by TargetCompiler's single-flight compile);
/// fall back to hashing the printed IR for modules built outside that path
/// (unit tests constructing IR by hand).
std::string moduleKey(const ir::Module &M) {
  if (!M.cacheKey().empty())
    return "ck|" + M.cacheKey();
  return "tx|" + hex64(fnv1a(ir::printModule(M)));
}

/// Interpreter canonInt: canonical 64-bit pattern of an integer value.
std::uint64_t canonIntBits(ir::Type Ty, std::uint64_t Bits) {
  switch (Ty.kind()) {
  case ir::TypeKind::I1:
    return Bits & 1;
  case ir::TypeKind::I32:
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(Bits))));
  default:
    return Bits;
  }
}

std::uint64_t canonArg(ir::Type Ty, std::uint64_t Bits) {
  return Ty.isInteger() ? canonIntBits(Ty, Bits) : Bits;
}

//===----------------------------------------------------------------------===//
// Compiled-module cache
//===----------------------------------------------------------------------===//

struct CompiledModule {
  NativeModuleSource Src;
  void *Handle = nullptr; ///< dlopen handle; intentionally never dlclosed
  std::unordered_map<std::string, DriverFn> Drivers; ///< by kernel IR name
};

std::string compilerPath() {
  if (const char *CXX = std::getenv("CODESIGN_NATIVE_CXX"))
    return CXX;
  return "c++";
}

std::string compilerFlags() {
  std::string Flags =
      "-std=c++20 -O2 -fPIC -shared -fno-strict-aliasing -ffp-contract=off";
#ifdef CODESIGN_NATIVE_SANITIZE_UNDEFINED
  // The ubsan CI flavor: generated modules dlopen into a sanitized process
  // and get instrumented the same way the harness is.
  Flags += " -fsanitize=undefined -fno-sanitize-recover=undefined";
#endif
  if (const char *Extra = std::getenv("CODESIGN_NATIVE_CXXFLAGS")) {
    Flags += ' ';
    Flags += Extra;
  }
  return Flags;
}

fs::path cacheDir() {
  if (const char *Dir = std::getenv("CODESIGN_NATIVE_CACHE_DIR"))
    return fs::path(Dir);
  return fs::temp_directory_path() / "codesign-native";
}

std::string readLogTail(const fs::path &Log) {
  std::ifstream In(Log);
  if (!In)
    return "(no compiler output captured)";
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();
  constexpr std::size_t MaxLen = 4000;
  if (Text.size() > MaxLen)
    Text = "..." + Text.substr(Text.size() - MaxLen);
  return Text;
}

/// Compile Source to a shared object in the disk cache and dlopen it. The
/// cache key covers the source bytes and the full compiler command, so a
/// toolchain or flag change recompiles instead of reusing a stale object.
Expected<void *> compileAndLoad(const std::string &Source) {
  const std::string Cmd = compilerPath() + " " + compilerFlags();
  const std::string Key = hex64(fnv1a(Source + '\0' + Cmd));
  std::error_code EC;
  const fs::path Dir = cacheDir();
  fs::create_directories(Dir, EC);
  if (EC)
    return makeError("cannot create native cache directory '", Dir.string(),
                     "': ", EC.message());
  const fs::path So = Dir / ("cg_" + Key + ".so");
  if (!fs::exists(So, EC)) {
    const std::string Tag = std::to_string(::getpid());
    const fs::path Src = Dir / ("cg_" + Key + ".cpp");
    const fs::path TmpSo = Dir / ("cg_" + Key + "." + Tag + ".tmp.so");
    const fs::path Log = Dir / ("cg_" + Key + "." + Tag + ".log");
    {
      std::ofstream Out(Src, std::ios::trunc);
      Out << Source;
      if (!Out)
        return makeError("cannot write generated source '", Src.string(),
                         "'");
    }
    const std::string Command = Cmd + " -o '" + TmpSo.string() + "' '" +
                                Src.string() + "' 2> '" + Log.string() + "'";
    const int Status = std::system(Command.c_str());
    if (Status != 0) {
      std::string Diag = readLogTail(Log);
      fs::remove(TmpSo, EC);
      return makeError("host compiler failed (", Command,
                       "):\n", Diag);
    }
    // Atomic publish: concurrent processes compiling the same key race
    // benignly — last rename wins with identical bytes.
    fs::rename(TmpSo, So, EC);
    if (EC && !fs::exists(So))
      return makeError("cannot publish compiled module '", So.string(),
                       "': ", EC.message());
    fs::remove(Log, EC);
  }
  void *Handle = ::dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Err = ::dlerror();
    return makeError("dlopen('", So.string(), "') failed: ",
                     Err ? Err : "unknown error");
  }
  return Handle;
}

//===----------------------------------------------------------------------===//
// Host bridge: one team's execution state
//===----------------------------------------------------------------------===//

#if defined(__x86_64__)
// glibc's swapcontext issues a rt_sigprocmask system call on every switch;
// with one suspend + one resume per lane per barrier rendezvous, that
// syscall dominates barrier-dense kernels. The generated code is plain C++
// that never touches the signal mask mid-kernel, so swapping the System V
// callee-saved registers and the stack pointer is a complete context
// switch. Other architectures fall back to ucontext.
#define CODESIGN_FIBER_RAWSWITCH 1
extern "C" void cgFiberSwitch(void **SaveSp, void *RestoreSp);
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl cgFiberSwitch\n"
    ".type cgFiberSwitch,@function\n"
    "cgFiberSwitch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  ret\n"
    ".size cgFiberSwitch,.-cgFiberSwitch\n");
#endif

std::uint64_t stackBytes() {
  if (const char *S = std::getenv("CODESIGN_NATIVE_STACK_BYTES")) {
    const std::uint64_t V = std::strtoull(S, nullptr, 10);
    if (V >= 16 * 1024)
      return V;
  }
  return 256 * 1024;
}

/// A lane stack: deliberately uninitialized heap memory sized by
/// CODESIGN_NATIVE_STACK_BYTES (default 256 KiB — generated frames are
/// dense uint64 slot arrays, so this is generous).
struct StackBuf {
  std::unique_ptr<std::uint8_t[]> Mem;
  std::uint64_t Size = 0;
};

/// Lane stacks recycle through a thread-local free list: a launch keeps at
/// most threads-per-team fibers live at once but runs thousands of teams,
/// and mapping + faulting a fresh quarter-megabyte stack per lane per team
/// costs more than many kernels do.
thread_local std::vector<StackBuf> StackPool;

StackBuf acquireStack() {
  const std::uint64_t Want = stackBytes();
  while (!StackPool.empty()) {
    StackBuf B = std::move(StackPool.back());
    StackPool.pop_back();
    if (B.Size == Want)
      return B;
    // Sized by a stale CODESIGN_NATIVE_STACK_BYTES value: drop it.
  }
  StackBuf B;
  B.Mem.reset(new std::uint8_t[Want]);
  B.Size = Want;
  return B;
}

void recycleStack(StackBuf &&B) {
  if (B.Mem && StackPool.size() < 256)
    StackPool.push_back(std::move(B));
}

/// One lane's execution fiber.
struct LaneFiber {
#if CODESIGN_FIBER_RAWSWITCH
  void *Sp = nullptr;
#else
  ucontext_t Ctx;
#endif
  StackBuf Stack;
  bool Started = false;
};

struct HostTeam {
  const LaunchEnv *Env = nullptr;
  vgpu::LaunchMetrics *Metrics = nullptr;
  vgpu::LaunchProfile *Profile = nullptr;
  std::uint32_t TeamId = 0;
  abi::cg_team T;
  std::vector<abi::cg_lane> Lanes;
  std::vector<std::vector<std::uint64_t>> SlotStore;
  std::vector<std::vector<std::uint8_t>> LocalStore;
  std::vector<std::uint8_t> Shared;
#if CODESIGN_FIBER_RAWSWITCH
  void *SchedSp = nullptr;
#else
  ucontext_t SchedCtx;
#endif
  std::vector<LaneFiber> Fibers;
  DriverFn Entry = nullptr;
};

/// Fiber entry functions cannot portably receive pointers (makecontext) or
/// registers (the raw switch's `ret` into us); the scheduler parks the
/// team/lane to start here immediately before the first swap into the
/// fiber. Thread-local because the launch engine runs teams concurrently on
/// its worker threads (fibers always resume on the thread that is
/// scheduling their team).
thread_local HostTeam *FiberStartTeam = nullptr;
thread_local abi::cg_lane *FiberStartLane = nullptr;

void fiberMain() {
  HostTeam *H = FiberStartTeam;
  abi::cg_lane *L = FiberStartLane;
  H->Entry(L);
#if CODESIGN_FIBER_RAWSWITCH
  // The lane finished (status 1 or 2); hand control back for good. The raw
  // switch has no uc_link, so returning is not an option.
  void *Dead = nullptr;
  cgFiberSwitch(&Dead, H->SchedSp);
  __builtin_unreachable();
#endif
  // ucontext: returning ends the fiber; uc_link resumes the scheduler
  // context saved by the swap that ran us last.
}

void trapLane(abi::cg_lane &L, const char *Msg) {
  L.trap_msg = Msg;
  L.status = 2u;
}

/// Grow (or map) lane L's local backing so [0, Need) is addressable, with
/// the interpreter BumpArena's growth policy; updates the window the
/// generated fast path checks against.
std::uint8_t *lanLocalData(HostTeam &H, abi::cg_lane &L, std::uint64_t Off,
                           std::uint64_t Size) {
  if (Off + Size > H.T.local_cap) {
    // The interpreter asserts here (local accesses beyond the arena cap are
    // a broken-invariant state its BumpArena refuses); the native tier
    // reports it as a trap with the same text.
    trapLane(L, "local access out of bounds");
    return nullptr;
  }
  auto &Store = H.LocalStore[L.tid];
  const std::uint64_t Need = Off + Size;
  if (Store.size() < Need)
    Store.resize(std::max<std::uint64_t>(Need * 2, 256), 0);
  L.local_base = Store.data();
  L.local_size = Store.size();
  return Store.data() + Off;
}

/// Interpreter TeamExecutor::resolve, host side (used by the NativeCtx
/// bridge; the generated code has its own identical copy).
std::uint8_t *bridgeResolve(HostTeam &H, abi::cg_lane &L, DeviceAddr A,
                            unsigned Size) {
  switch (A.space()) {
  case MemSpace::Global:
    if (A.offset() + Size > H.Env->GM.capacity()) {
      trapLane(L, "global access out of bounds");
      return nullptr;
    }
    return H.Env->GM.data(A.offset(), Size);
  case MemSpace::Shared:
    if (A.offset() + Size > H.Env->Config.SharedMemPerTeam) {
      trapLane(L, "shared memory access out of bounds");
      return nullptr;
    }
    return H.Shared.data() + A.offset();
  case MemSpace::Local:
    if (H.Env->Config.DebugChecks && A.owner() != L.tid) {
      std::snprintf(L.msg_buf, sizeof(L.msg_buf),
                    "cross-thread access to local memory (thread %u "
                    "dereferenced a pointer owned by thread %u); such "
                    "variables must be globalized",
                    L.tid, static_cast<unsigned>(A.owner()));
      trapLane(L, L.msg_buf);
      return nullptr;
    }
    return lanLocalData(H, L, A.offset(), Size);
  case MemSpace::Invalid:
    trapLane(L, A.isNull() ? "null pointer dereference"
                           : "dereference of a function address");
    return nullptr;
  }
  return nullptr;
}

/// Interpreter chargeAccess: cost-model cycles + metric/profile counters.
void chargeAccess(HostTeam &H, abi::cg_lane &L, MemSpace S, bool IsStore,
                  bool IsAtomic, unsigned SizeBytes) {
  const vgpu::CostModel &C = H.Env->Config.Costs;
  std::uint64_t Cost = 0;
  switch (S) {
  case MemSpace::Global:
    Cost = IsAtomic ? C.AtomicGlobal : C.GlobalAccess;
    (IsStore ? H.Metrics->GlobalStores : H.Metrics->GlobalLoads)++;
    if (H.Profile)
      (IsStore ? H.Profile->GlobalBytesWritten
               : H.Profile->GlobalBytesRead) += SizeBytes;
    break;
  case MemSpace::Shared:
    Cost = IsAtomic ? C.AtomicShared : C.SharedAccess;
    (IsStore ? H.Metrics->SharedStores : H.Metrics->SharedLoads)++;
    if (H.Profile)
      (IsStore ? H.Profile->SharedBytesWritten
               : H.Profile->SharedBytesRead) += SizeBytes;
    break;
  case MemSpace::Local:
    Cost = C.LocalAccess;
    H.Metrics->LocalAccesses++;
    break;
  case MemSpace::Invalid:
    break;
  }
  if (IsAtomic)
    H.Metrics->Atomics++;
  L.cycles += Cost;
}

/// vgpu::NativeCtx over a generated lane: registered native functors see
/// the interpreter's exact memory/charging semantics (NativeCtxImpl), so an
/// app's native loop bodies are backend-invariant.
class BridgeCtx final : public vgpu::NativeCtx {
public:
  BridgeCtx(HostTeam &H, abi::cg_lane &L, const std::uint64_t *Args,
            std::uint32_t N)
      : H(H), L(L), Args(Args), N(N) {}

  unsigned numArgs() const override { return N; }
  std::uint64_t argBits(unsigned I) const override {
    CODESIGN_ASSERT(I < N, "native arg out of range");
    return Args[I];
  }
  std::uint64_t loadBits(DeviceAddr A, unsigned Size) override {
    std::uint8_t *P = bridgeResolve(H, L, A, Size);
    if (!P)
      return 0;
    std::uint64_t Raw = 0;
    std::memcpy(&Raw, P, Size);
    chargeAccess(H, L, A.space(), false, false, Size);
    return Raw;
  }
  void storeBits(DeviceAddr A, std::uint64_t Bits, unsigned Size) override {
    std::uint8_t *P = bridgeResolve(H, L, A, Size);
    if (!P)
      return;
    std::memcpy(P, &Bits, Size);
    chargeAccess(H, L, A.space(), true, false, Size);
  }
  void loadBlockF64(DeviceAddr A, double *Out, std::uint32_t Count) override {
    const std::uint64_t Bytes = static_cast<std::uint64_t>(Count) * 8;
    if (A.space() == MemSpace::Global &&
        A.offset() + Bytes <= H.Env->GM.capacity()) {
      std::memcpy(Out, H.Env->GM.data(A.offset(), Bytes), Bytes);
      H.Metrics->GlobalLoads += Count;
      if (H.Profile)
        H.Profile->GlobalBytesRead += Bytes;
      L.cycles += Count * H.Env->Config.Costs.GlobalAccess;
      return;
    }
    if (A.space() == MemSpace::Shared &&
        A.offset() + Bytes <= H.Env->Config.SharedMemPerTeam) {
      std::memcpy(Out, H.Shared.data() + A.offset(), Bytes);
      H.Metrics->SharedLoads += Count;
      if (H.Profile)
        H.Profile->SharedBytesRead += Bytes;
      L.cycles += Count * H.Env->Config.Costs.SharedAccess;
      return;
    }
    NativeCtx::loadBlockF64(A, Out, Count);
  }
  void storeBlockF64(DeviceAddr A, const double *In,
                     std::uint32_t Count) override {
    const std::uint64_t Bytes = static_cast<std::uint64_t>(Count) * 8;
    if (A.space() == MemSpace::Global &&
        A.offset() + Bytes <= H.Env->GM.capacity()) {
      std::memcpy(H.Env->GM.data(A.offset(), Bytes), In, Bytes);
      H.Metrics->GlobalStores += Count;
      if (H.Profile)
        H.Profile->GlobalBytesWritten += Bytes;
      L.cycles += Count * H.Env->Config.Costs.GlobalAccess;
      return;
    }
    if (A.space() == MemSpace::Shared &&
        A.offset() + Bytes <= H.Env->Config.SharedMemPerTeam) {
      std::memcpy(H.Shared.data() + A.offset(), In, Bytes);
      H.Metrics->SharedStores += Count;
      if (H.Profile)
        H.Profile->SharedBytesWritten += Bytes;
      L.cycles += Count * H.Env->Config.Costs.SharedAccess;
      return;
    }
    NativeCtx::storeBlockF64(A, In, Count);
  }
  void chargeCycles(std::uint64_t Cycles) override {
    L.cycles += Cycles;
    H.Metrics->NativeCycles += Cycles;
  }
  void setResultBits(std::uint64_t Bits) override {
    Result = Bits;
    HasResult = true;
  }
  std::uint32_t threadId() const override { return L.tid; }
  std::uint32_t teamId() const override { return H.TeamId; }

  std::uint64_t Result = 0;
  bool HasResult = false;

private:
  HostTeam &H;
  abi::cg_lane &L;
  const std::uint64_t *Args;
  std::uint32_t N;
};

//--- cg_team host callbacks -------------------------------------------------

std::uint64_t hostNativeOp(void *Host, abi::cg_lane *Lane, std::int64_t Id,
                           const std::uint64_t *Args, std::uint32_t N,
                           std::uint32_t *HasResult) {
  auto &H = *static_cast<HostTeam *>(Host);
  BridgeCtx Ctx(H, *Lane, Args, N);
  H.Env->Registry.get(Id).Fn(Ctx);
  *HasResult = Ctx.HasResult ? 1u : 0u;
  return Ctx.Result;
}

std::uint64_t hostMalloc(void *Host, std::uint64_t Size) {
  auto &H = *static_cast<HostTeam *>(Host);
  // The interpreter counts every device malloc, including size-0 requests
  // that return null without touching the allocator.
  H.Metrics->DeviceMallocs++;
  if (Size == 0)
    return 0;
  auto R = H.Env->GM.allocate(Size, 16);
  if (!R)
    return 0;
  return DeviceAddr::make(MemSpace::Global, *R).Bits;
}

void hostFree(void *Host, std::uint64_t AddrBits) {
  auto &H = *static_cast<HostTeam *>(Host);
  const DeviceAddr A(AddrBits);
  if (!A.isNull())
    H.Env->GM.release(A.offset());
}

std::uint8_t *hostLocalData(void *Host, abi::cg_lane *Lane, std::uint64_t Off,
                            std::uint64_t Size) {
  auto &H = *static_cast<HostTeam *>(Host);
  return lanLocalData(H, *Lane, Off, Size);
}

/// Barrier suspension: park the calling lane fiber (its status is already
/// 3 with the site recorded) and resume the team scheduler. Control comes
/// back here when the rendezvous releases the lane.
void hostSuspend(void *Host, abi::cg_lane *Lane) {
  auto &H = *static_cast<HostTeam *>(Host);
#if CODESIGN_FIBER_RAWSWITCH
  cgFiberSwitch(&H.Fibers[Lane->tid].Sp, H.SchedSp);
#else
  ::swapcontext(&H.Fibers[Lane->tid].Ctx, &H.SchedCtx);
#endif
}

/// Run lane I until it blocks: start its fiber (first time) or resume it
/// at the barrier it is parked on.
void runLane(HostTeam &H, std::uint32_t I) {
  LaneFiber &Fb = H.Fibers[I];
  if (!Fb.Started) {
    Fb.Stack = acquireStack();
    Fb.Started = true;
    FiberStartTeam = &H;
    FiberStartLane = &H.Lanes[I];
#if CODESIGN_FIBER_RAWSWITCH
    // Hand-build the frame the switch restores: a 16-byte-aligned slot
    // holding fiberMain as the `ret` target, six callee-saved register
    // slots below it (zeroed — their first-entry values are never read).
    // After the `ret`, rsp sits where a `call fiberMain` would have left
    // it, so the generated code's alignment assumptions hold.
    std::uint8_t *Top = Fb.Stack.Mem.get() + Fb.Stack.Size;
    std::uintptr_t Entry =
        (reinterpret_cast<std::uintptr_t>(Top) - 8) & ~std::uintptr_t(15);
    void (*Fn)() = &fiberMain;
    std::memcpy(reinterpret_cast<void *>(Entry), &Fn, sizeof(Fn));
    Fb.Sp = reinterpret_cast<void *>(Entry - 48);
    std::memset(Fb.Sp, 0, 48);
#else
    ::getcontext(&Fb.Ctx);
    Fb.Ctx.uc_stack.ss_sp = Fb.Stack.Mem.get();
    Fb.Ctx.uc_stack.ss_size = Fb.Stack.Size;
    Fb.Ctx.uc_link = &H.SchedCtx;
    ::makecontext(&Fb.Ctx, &fiberMain, 0);
#endif
  }
#if CODESIGN_FIBER_RAWSWITCH
  cgFiberSwitch(&H.SchedSp, Fb.Sp);
#else
  ::swapcontext(&H.SchedCtx, &Fb.Ctx);
#endif
  if (H.Lanes[I].status != 3u) {
    // Returned or trapped: the fiber is dead, its stack reusable.
    recycleStack(std::move(Fb.Stack));
  }
}

//===----------------------------------------------------------------------===//
// The backend
//===----------------------------------------------------------------------===//

class NativeBound final : public BoundKernel {
public:
  std::shared_ptr<const CompiledModule> CM;
  DriverFn Fn = nullptr;
  std::uint32_t NumSlots = 0;
  std::vector<std::uint64_t> CPool; ///< device addresses, per this image
};

class NativeBackend final : public Backend {
public:
  std::string_view name() const override { return "native"; }

  Expected<void> prepareModule(const vgpu::ModuleImage &Image,
                               const LaunchEnv &) override {
    auto CM = ensureCompiled(Image.module());
    if (!CM)
      return CM.error();
    return Expected<void>::success();
  }

  Expected<std::unique_ptr<BoundKernel>>
  bindKernel(const vgpu::ModuleImage &Image, const ir::Function *Kernel,
             const LaunchEnv &Env) override {
    if (Env.Config.DetectRaces)
      return Error("DetectRaces needs shadow-memory instrumentation the "
                   "generated code does not carry; use the tree or bytecode "
                   "backend");
    auto CMOr = ensureCompiled(Image.module());
    if (!CMOr)
      return CMOr.error();
    std::shared_ptr<const CompiledModule> CM = CMOr.takeValue();
    const auto KI = CM->Src.Kernels.find(Kernel->name());
    if (KI == CM->Src.Kernels.end())
      return makeError("no generated entry for kernel '@", Kernel->name(),
                       "'");

    auto Bound = std::make_unique<NativeBound>();
    Bound->Fn = CM->Drivers.at(Kernel->name());
    Bound->NumSlots = KI->second.NumSlots;
    Bound->CPool.reserve(CM->Src.CPool.size());
    const ir::Module &M = Image.module();
    for (const NativeCPoolEntry &E : CM->Src.CPool) {
      if (E.IsFunction)
        Bound->CPool.push_back(
            Image.functionAddress(M.functions()[E.Index].get()).Bits);
      else
        Bound->CPool.push_back(
            Image.addressOf(M.globals()[E.Index].get()).Bits);
    }
    Bound->CM = std::move(CM);
    return {std::move(Bound)};
  }

  void runTeam(BoundKernel &Bound, const LaunchEnv &Env,
               const vgpu::ModuleImage &Image, const ir::Function *Kernel,
               std::span<const std::uint64_t> Args, std::uint32_t TeamId,
               std::uint32_t NumTeams, std::uint32_t NumThreads,
               vgpu::LaunchMetrics &Metrics, vgpu::LaunchProfile *Profile,
               TeamOutcome &Out) override {
    auto &BK = static_cast<NativeBound &>(Bound);
    CODESIGN_ASSERT(Args.size() == Kernel->numArgs(),
                    "argument count validated by the launch engine");

    // One scratch HostTeam per worker thread, reused across the thousands
    // of teams a launch sweeps: the arenas and lane arrays keep their
    // capacity, so per-team setup is a handful of memsets instead of ~2 ×
    // NumThreads allocations. Everything a kernel can observe is reset
    // below (shared arena re-zeroed, lanes and local stores cleared).
    thread_local HostTeam Scratch;
    HostTeam &H = Scratch;
    H.T = abi::cg_team{};
    H.Env = &Env;
    H.Metrics = &Metrics;
    H.Profile = Profile;
    H.TeamId = TeamId;
    // Shared arena preallocated at the device cap so the window never moves
    // (the interpreter grows on demand; the trap bound is identical). The
    // max() keeps initTeamShared's arena precondition even for
    // misconfigured tiny caps — the occupancy check rejects such launches
    // before any team runs.
    H.Shared.assign(std::max({Env.Config.SharedMemPerTeam,
                              Image.sharedStaticSize(),
                              std::uint64_t{1}}),
                    0);
    Image.initTeamShared(H.Shared);
    H.Lanes.resize(NumThreads);
    H.SlotStore.resize(NumThreads);
    H.LocalStore.resize(NumThreads);
    for (std::uint32_t I = 0; I < NumThreads; ++I) {
      auto &Slots = H.SlotStore[I];
      Slots.assign(std::max<std::uint32_t>(BK.NumSlots, 1), 0);
      for (unsigned A = 0; A < Kernel->numArgs(); ++A)
        Slots[A] = canonArg(Kernel->arg(A)->type(), Args[A]);
      // Local memory must read back zeroed, like the interpreter's fresh
      // per-team arena: clear() + the zero-filling regrowth in
      // lanLocalData re-zeroes exactly the bytes a lane actually maps.
      H.LocalStore[I].clear();
      abi::cg_lane &L = H.Lanes[I];
      L = abi::cg_lane{};
      L.team = &H.T;
      L.slots = Slots.data();
      L.tid = I;
    }
    H.T.host = &H;
    H.T.lanes = H.Lanes.data();
    H.T.num_lanes = NumThreads;
    H.T.team_id = TeamId;
    H.T.num_teams = NumTeams;
    H.T.num_threads = NumThreads;
    H.T.warp_size = Env.Config.WarpSize;
    H.T.debug_checks = Env.Config.DebugChecks ? 1u : 0u;
    H.T.global_base = Env.GM.data(0, Env.GM.capacity());
    H.T.global_size = Env.GM.capacity();
    H.T.shared_base = H.Shared.data();
    H.T.shared_cap = Env.Config.SharedMemPerTeam;
    H.T.local_cap = Env.Config.LocalMemPerThread;
    H.T.cpool = BK.CPool.data();
    H.T.host_native_op = &hostNativeOp;
    H.T.host_malloc = &hostMalloc;
    H.T.host_free = &hostFree;
    H.T.host_local_data = &hostLocalData;
    H.T.host_suspend = &hostSuspend;
    if (!BK.CM->Src.AnyBarriers) {
      // No barrier anywhere in the module, so no lane can ever suspend:
      // run each lane to completion straight on this stack, in the
      // interpreter's strict thread order, stopping at the first trap.
      for (std::uint32_t I = 0; I < NumThreads && !H.T.trapped; ++I) {
        abi::cg_lane &L = H.Lanes[I];
        BK.Fn(&L);
        if (L.status == 2u) {
          H.T.trapped = 1u;
          H.T.trap_lane = I;
        }
      }
      finishTeam(H, TeamId, Out);
      return;
    }

    H.Fibers.resize(NumThreads);
    for (LaneFiber &Fb : H.Fibers) {
      // A fiber can carry a stack across teams only when its lane was
      // still parked at a barrier when the previous team trapped; the
      // suspended frames hold no nontrivial objects, so the memory is
      // plain recyclable storage.
      recycleStack(std::move(Fb.Stack));
      Fb = LaneFiber{};
    }
    H.Entry = BK.Fn;

    // The interpreter's TeamExecutor::run(), with fibers standing in for
    // its explicit frame stacks: sweep lanes in strict thread order, run
    // each until it blocks, stop the team on the first trap, then release
    // the rendezvous (releaseBarrier's exact debug checks, wait-cycle
    // accounting, and cost charging).
    for (;;) {
      bool AllDone = true;
      for (std::uint32_t I = 0; I < NumThreads && !H.T.trapped; ++I) {
        abi::cg_lane &L = H.Lanes[I];
        if (L.status == 0u)
          runLane(H, I);
        if (L.status == 2u) {
          H.T.trapped = 1u;
          H.T.trap_lane = I;
          break;
        }
        if (L.status != 1u)
          AllDone = false;
      }
      if (H.T.trapped || AllDone)
        break;
      bool AnyAtBarrier = false;
      for (const abi::cg_lane &L : H.Lanes)
        if (L.status == 3u)
          AnyAtBarrier = true;
      if (!AnyAtBarrier) {
        H.T.trapped = 1u;
        H.T.team_trap_msg = "livelock detected";
        break;
      }
      // Rendezvous. Any arrival at an *aligned* barrier keys the debug
      // identity check (the interpreter compares BarrierInst pointers; the
      // module-unique site ids are that identity).
      std::uint64_t MaxArrival = 0;
      std::uint32_t AlignedSite = 0;
      for (const abi::cg_lane &L : H.Lanes) {
        if (L.status != 3u)
          continue;
        MaxArrival = std::max(MaxArrival, L.cycles);
        if (L.barrier_aligned != 0u)
          AlignedSite = L.barrier_site;
      }
      if (Env.Config.DebugChecks && AlignedSite != 0u) {
        for (const abi::cg_lane &L : H.Lanes)
          if (L.status == 3u && L.barrier_site != AlignedSite) {
            H.T.trapped = 1u;
            H.T.team_trap_msg =
                "aligned barrier reached with unaligned threads";
            break;
          }
        if (H.T.trapped)
          break;
      }
      Metrics.Barriers++;
      if (Profile)
        for (const abi::cg_lane &L : H.Lanes)
          if (L.status == 3u)
            Profile->BarrierWaitCycles += MaxArrival - L.cycles;
      const std::uint64_t Release =
          MaxArrival + Env.Config.Costs.BarrierCost;
      for (abi::cg_lane &L : H.Lanes) {
        if (L.status != 3u)
          continue;
        L.cycles = Release;
        L.status = 0u;
      }
    }

    finishTeam(H, TeamId, Out);
  }

private:
  /// Shared epilogue: trap formatting (the interpreter's exact wording) and
  /// the team cycle count.
  static void finishTeam(const HostTeam &H, std::uint32_t TeamId,
                         TeamOutcome &Out) {
    if (H.T.trapped) {
      if (H.T.team_trap_msg) {
        Out.Err = "team " + std::to_string(TeamId) + ": " +
                  H.T.team_trap_msg;
      } else {
        const abi::cg_lane &L = H.Lanes[H.T.trap_lane];
        Out.Err = "thread " + std::to_string(L.tid) + " of team " +
                  std::to_string(TeamId) + ": " +
                  (L.trap_msg ? L.trap_msg : "trap without a message");
      }
    }
    std::uint64_t MaxCycles = 0;
    for (const abi::cg_lane &L : H.Lanes)
      MaxCycles = std::max(MaxCycles, L.cycles);
    Out.Cycles = MaxCycles;
  }

  Expected<std::shared_ptr<const CompiledModule>>
  ensureCompiled(const ir::Module &M) {
    const std::string Key = moduleKey(M);
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    auto CM = std::make_shared<CompiledModule>();
    CM->Src = emitNativeModule(M);
    auto Handle = compileAndLoad(CM->Src.Source);
    if (!Handle)
      return Handle.error();
    CM->Handle = *Handle;
    for (const auto &[Name, Info] : CM->Src.Kernels) {
      void *Sym = ::dlsym(CM->Handle, Info.Symbol.c_str());
      if (!Sym)
        return makeError("generated module lacks driver symbol '",
                         Info.Symbol, "' for kernel '@", Name, "'");
      CM->Drivers[Name] = reinterpret_cast<DriverFn>(Sym);
    }
    auto Shared = std::shared_ptr<const CompiledModule>(std::move(CM));
    Cache.emplace(Key, Shared);
    return Shared;
  }

  std::mutex Mutex;
  std::unordered_map<std::string, std::shared_ptr<const CompiledModule>>
      Cache;
};

} // namespace

std::unique_ptr<Backend> makeNativeBackend() {
  return std::make_unique<NativeBackend>();
}

} // namespace codesign::exec
