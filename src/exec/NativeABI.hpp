//===- exec/NativeABI.hpp - Host-side view of the native codegen ABI -------===//
//
// Includes NativeABI.inc into a namespace so the host bridge in
// NativeBackend.cpp manipulates the exact struct layouts the generated
// code was compiled against (the generated TU splices the same bytes at
// global scope; see NativeEmbedded.hpp).
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>

namespace codesign::exec::abi {
#include "NativeABI.inc"
} // namespace codesign::exec::abi
