//===- exec/BytecodeBackend.cpp - Warp-batched bytecode backend ------------===//
//
// The fast interpreter tier as an exec::Backend. prepareModule/bindKernel
// materialize the module's one-shot bytecode lowering and this image's
// resolved constant pools ahead of the team fan-out (the lazy cache is
// mutex-guarded, but paying the lowering under contention would skew the
// first team's wall time); runTeam delegates to the warp-batched executor.
//
//===----------------------------------------------------------------------===//
#include "exec/Backend.hpp"
#include "exec/BuiltinBackends.hpp"
#include "vgpu/BytecodeExecutor.hpp"

namespace codesign::exec {

namespace {

/// Per-launch handle: the image's lowering and resolved pools. Both live
/// in the ModuleImage, so raw pointers stay valid for the handle's life.
class BytecodeBound final : public BoundKernel {
public:
  BytecodeBound(const vgpu::BytecodeModule &BC,
                const std::vector<std::vector<std::uint64_t>> &Pools)
      : BC(BC), Pools(Pools) {}

  const vgpu::BytecodeModule &BC;
  const std::vector<std::vector<std::uint64_t>> &Pools;
};

class BytecodeBackend final : public Backend {
public:
  std::string_view name() const override { return "bytecode"; }

  Expected<void> prepareModule(const vgpu::ModuleImage &Image,
                               const LaunchEnv &) override {
    (void)Image.bytecode(); // force the lowering outside the fan-out
    return Expected<void>::success();
  }

  Expected<std::unique_ptr<BoundKernel>>
  bindKernel(const vgpu::ModuleImage &Image, const ir::Function *,
             const LaunchEnv &) override {
    return std::unique_ptr<BoundKernel>(
        std::make_unique<BytecodeBound>(Image.bytecode(),
                                        Image.bytecodePools()));
  }

  void runTeam(BoundKernel &Bound, const LaunchEnv &Env,
               const vgpu::ModuleImage &Image, const ir::Function *Kernel,
               std::span<const std::uint64_t> Args, std::uint32_t TeamId,
               std::uint32_t NumTeams, std::uint32_t NumThreads,
               vgpu::LaunchMetrics &Metrics, vgpu::LaunchProfile *Profile,
               TeamOutcome &Out) override {
    auto &BK = static_cast<BytecodeBound &>(Bound);
    vgpu::BCTeamResult R = vgpu::runBytecodeTeam(
        Env.Config, Env.GM, Env.Registry, Image, BK.BC, BK.Pools, TeamId,
        NumTeams, NumThreads, Kernel, Args, Metrics, Profile);
    Out.Err = std::move(R.Err);
    Out.Cycles = R.Cycles;
  }
};

} // namespace

std::unique_ptr<Backend> makeBytecodeBackend() {
  return std::make_unique<BytecodeBackend>();
}

} // namespace codesign::exec
