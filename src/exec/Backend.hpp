//===- exec/Backend.hpp - Pluggable execution backends ---------------------===//
//
// One narrow abstraction over "how does a kernel actually run": the tree
// interpreter, the warp-batched bytecode tier and the native C++ codegen
// backend all implement exec::Backend and are selected by name through the
// exec::BackendRegistry. The launch engine (LaunchEngine.cpp) owns
// everything backend-independent — launch validation, occupancy, the
// parallel team fan-out on the host ThreadPool and the deterministic
// team-ID-order merge — so a backend only supplies three hooks, mirroring
// Halide's CodeGen_GPU_Dev split (init_module / add_kernel / compile):
//
//   prepareModule  one-time per-image work (bytecode lowering, C++ codegen)
//   bindKernel     per-kernel legality checks + launchable handle
//   runTeam        execute one team (called concurrently for distinct teams)
//
// Consumers (VirtualGPU, HostRuntime, Service, the bench harness) route
// every launch through the registry instead of switching on an execution
// tier enum.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/Error.hpp"
#include "vgpu/Interpreter.hpp"

namespace codesign::exec {

/// Everything a backend may touch while serving one launch: the device
/// shape/cost model, global memory, and the native-op registry.
struct LaunchEnv {
  const vgpu::DeviceConfig &Config;
  vgpu::GlobalMemory &GM;
  const vgpu::NativeRegistry &Registry;
};

/// Outcome of one team's execution. Metrics/profile accumulate into the
/// per-team shards the launch engine hands to runTeam.
struct TeamOutcome {
  std::optional<std::string> Err; ///< trap/deadlock message, empty = clean
  std::uint64_t Cycles = 0;       ///< the team's modeled wall time
};

/// A kernel bound by a backend for execution: whatever per-(image, kernel)
/// state runTeam needs (resolved constant pools, dlopen'd symbols, ...).
class BoundKernel {
public:
  virtual ~BoundKernel() = default;
};

/// An execution backend. Implementations must be thread-safe: the service
/// and the parallel launch engine call every hook concurrently.
class Backend {
public:
  virtual ~Backend() = default;

  /// Registry name ("tree", "bytecode", "native").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// One-time per-image preparation ahead of the team fan-out. Called on
  /// every launch; implementations cache (ModuleImage already memoizes its
  /// bytecode lowering, the native backend its shared objects).
  virtual Expected<void> prepareModule(const vgpu::ModuleImage &Image,
                                       const LaunchEnv &Env) = 0;

  /// Bind Kernel for launching. Backend-specific legality gates live here
  /// (the native backend rejects kernels its codegen cannot express) so a
  /// launch fails with an explicit error instead of misexecuting.
  virtual Expected<std::unique_ptr<BoundKernel>>
  bindKernel(const vgpu::ModuleImage &Image, const ir::Function *Kernel,
             const LaunchEnv &Env) = 0;

  /// Execute one team. Called concurrently for distinct teams; Metrics and
  /// Profile are this team's private shards.
  virtual void runTeam(BoundKernel &Bound, const LaunchEnv &Env,
                       const vgpu::ModuleImage &Image,
                       const ir::Function *Kernel,
                       std::span<const std::uint64_t> Args,
                       std::uint32_t TeamId, std::uint32_t NumTeams,
                       std::uint32_t NumThreads, vgpu::LaunchMetrics &Metrics,
                       vgpu::LaunchProfile *Profile, TeamOutcome &Out) = 0;
};

/// Name-indexed registry of execution backends. The global() instance is
/// constructed with the three built-in backends registered; tests may add
/// their own.
class BackendRegistry {
public:
  /// The process-wide registry (tree/bytecode/native pre-registered).
  static BackendRegistry &global();

  /// Register a backend under its name(). Replaces an existing
  /// registration of the same name (latest wins, for test doubles).
  void add(std::unique_ptr<Backend> B);

  /// Look up a backend by canonical name. Unknown names are a recoverable
  /// error listing the registered backends.
  [[nodiscard]] Expected<Backend *> lookup(std::string_view Name) const;

  /// Registered backend names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Backend>> Backends;
};

/// Canonicalize a user-facing backend spelling ("tree"/"interp"/
/// "interpreter", "bytecode"/"bc", "native") to its registry name.
/// Unknown spellings are a recoverable error naming the valid choices —
/// the CODESIGN_EXEC_BACKEND knob must reject typos instead of silently
/// running the default backend.
[[nodiscard]] Expected<std::string> canonicalBackendName(std::string_view V);

/// Execute a launch through backend B: validate, compute occupancy,
/// prepare/bind, fan teams out on the host ThreadPool and merge the
/// per-team shards in team-ID order (bit-identical to a serial run).
[[nodiscard]] vgpu::LaunchResult
launch(Backend &B, const LaunchEnv &Env, const vgpu::ModuleImage &Image,
       const ir::Function *Kernel, std::span<const std::uint64_t> Args,
       std::uint32_t NumTeams, std::uint32_t NumThreads);

/// Convenience: canonicalize Name, look it up in the global registry and
/// launch; resolution failures come back as LaunchResult errors.
[[nodiscard]] vgpu::LaunchResult
launch(std::string_view Name, const LaunchEnv &Env,
       const vgpu::ModuleImage &Image, const ir::Function *Kernel,
       std::span<const std::uint64_t> Args, std::uint32_t NumTeams,
       std::uint32_t NumThreads);

} // namespace codesign::exec
