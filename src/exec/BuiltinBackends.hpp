//===- exec/BuiltinBackends.hpp - Built-in backend factories ---------------===//
//
// Internal to src/exec: factories the registry uses to construct the three
// built-in backends. Consumers select backends by name via BackendRegistry.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <memory>

namespace codesign::exec {

class Backend;

std::unique_ptr<Backend> makeTreeBackend();
std::unique_ptr<Backend> makeBytecodeBackend();
std::unique_ptr<Backend> makeNativeBackend();

} // namespace codesign::exec
