//===- exec/NativeCodegen.hpp - IR -> standalone C++ emission --------------===//
//
// Translates a post-optimization ir::Module into one self-contained C++
// translation unit the native backend compiles with the host toolchain and
// dlopens behind the launch API. Each kernel exports a lane entry the host
// runs on a per-lane fiber; a barrier anywhere in the lane's call stack
// suspends the fiber through cg_team::host_suspend, and the host scheduler
// replays the interpreter's cooperative strict-lane-order run-to-barrier
// schedule, which is what makes native outputs bit-identical to the tree
// and bytecode engines.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/Module.hpp"

namespace codesign::exec {

/// One entry of the generated module's constant pool: a device address the
/// host resolves per ModuleImage at bind time (globals move between images;
/// the compiled .so must not bake them in). Index counts the module's
/// globals (IsFunction == false) or functions (IsFunction == true) in
/// creation order — the same order ModuleImage uses.
struct NativeCPoolEntry {
  bool IsFunction = false;
  std::uint32_t Index = 0;
};

/// What the host needs to know about one emitted kernel entry.
struct NativeKernelInfo {
  std::string Symbol;         ///< exported "extern C" lane-entry symbol
  std::uint32_t NumSlots = 0; ///< kernel-entry value slots per lane
  bool HasBarriers = false;   ///< barriers in the entry itself (callees may
                              ///< still suspend through host_suspend)
};

/// The generated translation unit plus its binding manifest.
struct NativeModuleSource {
  std::string Source;
  std::vector<NativeCPoolEntry> CPool;
  std::unordered_map<std::string, NativeKernelInfo> Kernels; ///< by IR name
  /// True when any function in the module contains a barrier. When false,
  /// lanes can never suspend, so the backend runs them straight on the
  /// scheduler's stack instead of spawning fibers.
  bool AnyBarriers = false;
};

/// Emit M as a standalone C++ translation unit. Total: every reachable
/// construct is either compiled with the interpreter's exact semantics or
/// emitted as an explicit trap carrying the interpreter's message (e.g.
/// calls to unresolved external declarations), so a generated module can
/// never silently diverge.
NativeModuleSource emitNativeModule(const ir::Module &M);

} // namespace codesign::exec
