//===- exec/LaunchEngine.cpp - Backend registry + shared launch engine -----===//
//
// The backend-independent half of every kernel launch, extracted from the
// old vgpu::KernelLauncher: argument/geometry validation, the occupancy
// calculation linking Figure 11's resource columns to Figure 10's kernel
// times, the parallel team fan-out on the host ThreadPool, and the
// deterministic merge of per-team metric shards in team-ID order. Backends
// only supply prepareModule/bindKernel/runTeam.
//
//===----------------------------------------------------------------------===//
#include "exec/Backend.hpp"

#include <algorithm>

#include "exec/BuiltinBackends.hpp"
#include "support/ThreadPool.hpp"
#include "vgpu/KernelStats.hpp"

namespace codesign::exec {

//===----------------------------------------------------------------------===//
// BackendRegistry
//===----------------------------------------------------------------------===//

BackendRegistry &BackendRegistry::global() {
  static BackendRegistry *R = [] {
    auto *Reg = new BackendRegistry();
    Reg->add(makeTreeBackend());
    Reg->add(makeBytecodeBackend());
    Reg->add(makeNativeBackend());
    return Reg;
  }();
  return *R;
}

void BackendRegistry::add(std::unique_ptr<Backend> B) {
  CODESIGN_ASSERT(B != nullptr, "null backend registration");
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &Existing : Backends) {
    if (Existing->name() == B->name()) {
      Existing = std::move(B);
      return;
    }
  }
  Backends.push_back(std::move(B));
}

Expected<Backend *> BackendRegistry::lookup(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &B : Backends)
    if (B->name() == Name)
      return B.get();
  std::string Known;
  for (const auto &B : Backends) {
    if (!Known.empty())
      Known += ", ";
    Known += B->name();
  }
  return Error("unknown execution backend '" + std::string(Name) +
               "' (registered: " + Known + ")");
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Names;
  Names.reserve(Backends.size());
  for (const auto &B : Backends)
    Names.emplace_back(B->name());
  return Names;
}

Expected<std::string> canonicalBackendName(std::string_view V) {
  if (V == "tree" || V == "interp" || V == "interpreter")
    return std::string("tree");
  if (V == "bytecode" || V == "bc")
    return std::string("bytecode");
  if (V == "native")
    return std::string("native");
  return Error("unknown execution backend '" + std::string(V) +
               "' (valid: tree|interp|interpreter, bytecode|bc, native)");
}

//===----------------------------------------------------------------------===//
// Launch engine
//===----------------------------------------------------------------------===//

using vgpu::KernelStaticStats;
using vgpu::LaunchMetrics;
using vgpu::LaunchProfile;
using vgpu::LaunchResult;

LaunchResult launch(Backend &B, const LaunchEnv &Env,
                    const vgpu::ModuleImage &Image, const ir::Function *Kernel,
                    std::span<const std::uint64_t> Args,
                    std::uint32_t NumTeams, std::uint32_t NumThreads) {
  const vgpu::DeviceConfig &Config = Env.Config;
  LaunchResult Result;
  if (!Kernel->hasAttr(ir::FnAttr::Kernel)) {
    Result.Error = "function '" + Kernel->name() + "' is not a kernel";
    return Result;
  }
  if (Args.size() != Kernel->numArgs()) {
    Result.Error = "kernel argument count mismatch";
    return Result;
  }
  if (NumThreads == 0 || NumThreads > Config.MaxThreadsPerTeam ||
      NumTeams == 0) {
    Result.Error = "invalid launch configuration";
    return Result;
  }
  if (Image.sharedStaticSize() > Config.SharedMemPerTeam) {
    Result.Error = "static shared memory exceeds device capacity";
    return Result;
  }

  // Occupancy: how many teams one SM can host concurrently, limited by
  // shared memory and register usage (the Figure 11 -> Figure 10 link).
  const KernelStaticStats Stats =
      vgpu::computeKernelStats(*Kernel, Env.Registry);
  std::uint32_t Occupancy = Config.MaxConcurrentTeamsPerSM;
  if (Stats.SharedMemBytes > 0)
    Occupancy = std::min<std::uint32_t>(
        Occupancy,
        static_cast<std::uint32_t>(Config.SharedMemPerTeam /
                                   Stats.SharedMemBytes));
  const std::uint64_t RegsPerTeam =
      static_cast<std::uint64_t>(Stats.Registers) * NumThreads;
  if (RegsPerTeam > 0)
    Occupancy = std::min<std::uint32_t>(
        Occupancy,
        static_cast<std::uint32_t>(Config.RegisterFilePerSM / RegsPerTeam));
  Occupancy = std::max<std::uint32_t>(Occupancy, 1);
  Result.Metrics.TeamsPerSM = Occupancy;

  // Backend hooks: per-image preparation and per-kernel binding happen
  // once, before the fan-out, so no team pays them under contention and a
  // backend that cannot execute this kernel fails the whole launch with an
  // explicit error.
  if (auto Prep = B.prepareModule(Image, Env); !Prep) {
    Result.Error =
        std::string(B.name()) + " backend: " + Prep.error().message();
    return Result;
  }
  auto Bound = B.bindKernel(Image, Kernel, Env);
  if (!Bound) {
    Result.Error =
        std::string(B.name()) + " backend: " + Bound.error().message();
    return Result;
  }

  // Execute the teams. Each team runs against a private metrics shard and
  // touches no mutable state besides global memory (reached via atomics),
  // so teams can execute on any number of host threads. The shards are
  // merged in team-ID order below, which makes every reported number — and
  // the error reported for a trapping launch — bit-identical to a serial
  // run. On failure the merge reports the lowest-numbered trapping team —
  // exactly the team a serial sweep would have stopped at (every team below
  // it completes cleanly in both modes).
  struct TeamShard {
    bool Ran = false;
    TeamOutcome Out;
    LaunchMetrics Metrics;
    LaunchProfile Profile;
  };
  std::vector<TeamShard> Shards(NumTeams);
  const auto RunTeam = [&](std::uint64_t Team) {
    TeamShard &S = Shards[Team];
    B.runTeam(**Bound, Env, Image, Kernel, Args,
              static_cast<std::uint32_t>(Team), NumTeams, NumThreads,
              S.Metrics, Config.CollectProfile ? &S.Profile : nullptr, S.Out);
    S.Ran = true;
  };
  const std::uint32_t Workers = std::min<std::uint32_t>(
      support::resolveHostThreads(Config.HostThreads), NumTeams);
  if (Workers <= 1) {
    // Serial fallback: execute in the caller, stopping at the first trap
    // like the original engine.
    for (std::uint32_t Team = 0; Team < NumTeams; ++Team) {
      RunTeam(Team);
      if (Shards[Team].Out.Err)
        break;
    }
  } else {
    support::ThreadPool Pool(Workers);
    Pool.parallelFor(NumTeams, RunTeam);
  }

  // Deterministic merge in team-ID order.
  std::vector<std::vector<std::uint64_t>> PerSM(Config.NumSMs);
  for (std::uint32_t Team = 0; Team < NumTeams; ++Team) {
    TeamShard &S = Shards[Team];
    if (!S.Ran)
      break; // serial fallback stopped at a lower team's trap
    if (S.Out.Err) {
      Result.Error = *S.Out.Err;
      return Result;
    }
    Result.Metrics.accumulate(S.Metrics);
    if (Config.CollectProfile) {
      Result.Profile.Collected = true;
      Result.Profile.accumulate(S.Profile);
      Result.Profile.addTeam(S.Out.Cycles);
    }
    PerSM[Team % Config.NumSMs].push_back(S.Out.Cycles);
  }
  // Wall time per SM: its teams run in waves of `Occupancy`.
  for (const auto &Teams : PerSM) {
    std::uint64_t Wall = 0;
    for (std::size_t I = 0; I < Teams.size(); I += Occupancy) {
      std::uint64_t BatchMax = 0;
      for (std::size_t J = I; J < std::min(Teams.size(), I + Occupancy); ++J)
        BatchMax = std::max(BatchMax, Teams[J]);
      Wall += BatchMax;
    }
    Result.Metrics.KernelCycles = std::max(Result.Metrics.KernelCycles, Wall);
  }
  Result.Ok = true;
  return Result;
}

LaunchResult launch(std::string_view Name, const LaunchEnv &Env,
                    const vgpu::ModuleImage &Image, const ir::Function *Kernel,
                    std::span<const std::uint64_t> Args,
                    std::uint32_t NumTeams, std::uint32_t NumThreads) {
  auto Canon = canonicalBackendName(Name);
  if (!Canon) {
    LaunchResult R;
    R.Error = Canon.error().message();
    return R;
  }
  auto B = BackendRegistry::global().lookup(*Canon);
  if (!B) {
    LaunchResult R;
    R.Error = B.error().message();
    return R;
  }
  return launch(**B, Env, Image, Kernel, Args, NumTeams, NumThreads);
}

} // namespace codesign::exec
