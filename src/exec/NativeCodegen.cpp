//===- exec/NativeCodegen.cpp - IR -> standalone C++ emission --------------===//
//
// Emits one self-contained C++ translation unit per ir::Module. The
// generated code mirrors the tree interpreter instruction by instruction —
// the same canonical 64-bit value encoding (I1 masked, I32 sign-extended,
// f32 stored as its 4 raw bytes), the same intops:: wrapping arithmetic,
// and the same trap conditions and messages — so its outputs are
// bit-identical to the interpreting backends on any input. Speed comes
// from the host compiler, not from semantic shortcuts: values live in
// plain uint64 slots, control flow is gotos, and only traps, native ops,
// device mallocs and barrier suspension call back into the host.
//
// Lanes run on host-side fibers (NativeBackend.cpp's team scheduler): a
// barrier — in the kernel entry or any callee, including ones reached
// through the state machine's indirect work-function calls — records its
// site and suspends via cg_team::host_suspend, and the scheduler replays
// the interpreter's strict-lane-order run-to-barrier schedule around the
// suspended call stacks. Barrier site ids are unique across the module so
// they stand in for the interpreter's BarrierInst pointer identity.
//
// Layout of a generated TU:
//   includes
//   vgpu/IntOps.hpp          (embedded verbatim at build time)
//   exec/NativeABI.inc       (embedded verbatim; host structs, same bytes)
//   prelude                  (trap/resolve/canon/atomic helpers)
//   static body functions    (cg_f<i>)
//   extern "C" lane entries  (one per kernel; what the fibers run)
//
//===----------------------------------------------------------------------===//
#include "exec/NativeCodegen.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "NativeEmbedded.hpp"
#include "ir/Function.hpp"
#include "ir/Instruction.hpp"

namespace codesign::exec {

namespace {

using namespace ir;

//===----------------------------------------------------------------------===//
// Compile-time mirrors of the interpreter's value encoding
//===----------------------------------------------------------------------===//

/// canonInt (Interpreter.cpp): the canonical 64-bit pattern of an integer.
std::uint64_t canonIntBits(Type Ty, std::uint64_t Bits) {
  switch (Ty.kind()) {
  case TypeKind::I1:
    return Bits & 1;
  case TypeKind::I32:
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(Bits))));
  default:
    return Bits;
  }
}

/// encodeF (Interpreter.cpp): f32 constants store their 4 raw bytes.
std::uint64_t encodeFPBits(Type Ty, double D) {
  if (Ty.kind() == TypeKind::F32) {
    const float F = static_cast<float>(D);
    std::uint32_t W = 0;
    std::memcpy(&W, &F, sizeof(W));
    return W;
  }
  std::uint64_t B = 0;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

std::string hexU64(std::uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llxULL",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// C string literal contents for a trap message (octal escapes are
/// self-terminating, unlike \x).
std::string escapeC(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char Ch : S) {
    const auto U = static_cast<unsigned char>(Ch);
    if (Ch == '\\' || Ch == '"') {
      Out += '\\';
      Out += Ch;
    } else if (U >= 0x20 && U < 0x7F) {
      Out += Ch;
    } else {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\%03o", U);
      Out += Buf;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

class Emitter {
public:
  explicit Emitter(const Module &M) : M(M) {
    std::uint32_t GIdx = 0;
    for (const auto &G : M.globals())
      GlobalOrdinal[G.get()] = GIdx++;
    std::uint32_t FIdx = 0;
    for (const auto &F : M.functions())
      FnOrdinal[F.get()] = FIdx++;
  }

  NativeModuleSource run() {
    emitHeader();
    for (const auto &F : M.functions())
      if (!F->isDeclaration())
        emitForwardDecl(*F);
    S += "\n";
    for (const auto &F : M.functions())
      if (!F->isDeclaration())
        emitFunction(*F);
    for (const auto &F : M.functions())
      if (!F->isDeclaration() && F->hasAttr(FnAttr::Kernel))
        emitLaneEntry(*F);
    Out.Source = std::move(S);
    Out.AnyBarriers = NextSite > 0;
    return std::move(Out);
  }

private:
  const Module &M;
  NativeModuleSource Out;
  std::string S;

  std::unordered_map<const GlobalVariable *, std::uint32_t> GlobalOrdinal;
  std::unordered_map<const Function *, std::uint32_t> FnOrdinal;
  /// cpool position of an already-referenced global/function.
  std::unordered_map<const Value *, std::uint32_t> PoolIndex;

  // Per-function state.
  const Function *F = nullptr;
  std::unordered_map<const Value *, std::uint32_t> Slots;
  std::unordered_map<const BasicBlock *, std::uint32_t> BlockIds;
  std::unordered_map<const Instruction *, std::uint32_t> BarrierSites;
  std::uint32_t NextSite = 0; ///< module-global barrier site counter
  std::uint32_t NumSlots = 0;
  bool FnHasBarriers = false;
  bool KernelMode = false;
  std::string Arr;     ///< "R" (lane slots) or "S" (callee-local array)
  std::string RetDflt; ///< "return;" or "return 0ULL;"

  //--- Small emission helpers ----------------------------------------------

  void line(const std::string &Text) {
    S += "  ";
    S += Text;
    S += '\n';
  }

  [[nodiscard]] std::string trapStmt(const std::string &Msg) const {
    return "{ cg_trap(L, \"" + escapeC(Msg) + "\"); " + RetDflt + " }";
  }

  [[nodiscard]] std::uint32_t poolIndexOf(const Value *V, bool IsFunction,
                                          std::uint32_t Ordinal) {
    auto It = PoolIndex.find(V);
    if (It != PoolIndex.end())
      return It->second;
    const auto Pos = static_cast<std::uint32_t>(Out.CPool.size());
    Out.CPool.push_back({IsFunction, Ordinal});
    PoolIndex.emplace(V, Pos);
    return Pos;
  }

  /// Expression for a value's canonical 64-bit representation (mirrors
  /// TeamExecutor::operandValue).
  [[nodiscard]] std::string val(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Instruction:
    case ValueKind::Argument:
      return Arr + "[" + std::to_string(Slots.at(V)) + "]";
    case ValueKind::ConstantInt:
      return hexU64(canonIntBits(
          V->type(),
          static_cast<std::uint64_t>(ir::cast<ir::ConstantInt>(V)->value())));
    case ValueKind::ConstantFP:
      return hexU64(encodeFPBits(V->type(),
                                 ir::cast<ir::ConstantFP>(V)->value()));
    case ValueKind::ConstantNull:
    case ValueKind::Undef:
      return "0ULL";
    case ValueKind::GlobalVariable: {
      const auto *G = ir::cast<ir::GlobalVariable>(V);
      return "T->cpool[" +
             std::to_string(poolIndexOf(V, false, GlobalOrdinal.at(G))) + "]";
    }
    case ValueKind::Function: {
      const Function *Fn = Function::fromValue(V);
      return "T->cpool[" +
             std::to_string(poolIndexOf(V, true, FnOrdinal.at(Fn))) + "]";
    }
    }
    return "0ULL";
  }

  /// canonInt as an expression over E (already width-correct bits).
  [[nodiscard]] static std::string canonExpr(Type Ty, const std::string &E) {
    switch (Ty.kind()) {
    case TypeKind::I1:
      return "((" + E + ") & 1ULL)";
    case TypeKind::I32:
      return "cg_sx32(" + E + ")";
    default:
      return "(" + E + ")";
    }
  }

  /// zextToWidth as an expression over E.
  [[nodiscard]] static std::string zextExpr(Type Ty, const std::string &E) {
    switch (Ty.kind()) {
    case TypeKind::I1:
      return "((" + E + ") & 1ULL)";
    case TypeKind::I32:
      return "((" + E + ") & 0xffffffffULL)";
    default:
      return "(" + E + ")";
    }
  }

  [[nodiscard]] static std::string decfCall(Type Ty, const std::string &E) {
    return (Ty.kind() == TypeKind::F32 ? "cg_decf32(" : "cg_decf64(") + E +
           ")";
  }

  [[nodiscard]] static std::string encfCall(Type Ty, const std::string &E) {
    return (Ty.kind() == TypeKind::F32 ? "cg_encf32(" : "cg_encf64(") + E +
           ")";
  }

  [[nodiscard]] std::string slotRef(const Value *V) const {
    return Arr + "[" + std::to_string(Slots.at(V)) + "]";
  }

  /// `Arr[slot(I)] = E;` — or nothing for void-typed instructions.
  [[nodiscard]] std::string setRes(const Instruction *I,
                                   const std::string &E) const {
    if (I->type().isVoid())
      return "(void)(" + E + ");";
    return slotRef(I) + " = " + E + ";";
  }

  //--- Module-level pieces --------------------------------------------------

  void emitHeader() {
    S += "// Generated by codesign exec::NativeBackend. Do not edit.\n";
    S += "#include <atomic>\n#include <cstdint>\n#include <cstdio>\n"
         "#include <cstring>\n\n";
    // vgpu/IntOps.hpp verbatim, minus the include guard (we are the main
    // file here and GCC warns about #pragma once in it).
    std::string IntOps = embedded::IntOpsText;
    const std::size_t Pragma = IntOps.find("#pragma once");
    if (Pragma != std::string::npos)
      IntOps.erase(Pragma, std::strlen("#pragma once"));
    S += IntOps;
    S += "\nnamespace intops = codesign::vgpu::intops;\n\n";
    S += embedded::AbiText;
    S += R"CGPRE(
static constexpr std::uint64_t CG_OFF_MASK = (1ULL << 46) - 1ULL;

static inline void cg_trap(cg_lane *L, const char *Msg) {
  L->trap_msg = Msg;
  L->status = 2u;
}

static inline std::uint64_t cg_sx32(std::uint64_t X) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(
      static_cast<std::int32_t>(static_cast<std::uint32_t>(X))));
}

static inline double cg_decf32(std::uint64_t B) {
  const std::uint32_t W = static_cast<std::uint32_t>(B);
  float F;
  std::memcpy(&F, &W, sizeof(F));
  return static_cast<double>(F);
}

static inline double cg_decf64(std::uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof(D));
  return D;
}

static inline std::uint64_t cg_encf32(double D) {
  const float F = static_cast<float>(D);
  std::uint32_t W;
  std::memcpy(&W, &F, sizeof(W));
  return static_cast<std::uint64_t>(W);
}

static inline std::uint64_t cg_encf64(double D) {
  std::uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

// Interpreter resolve(): device address -> host pointer, trapping with the
// interpreter's exact messages. Local resolution is always against the
// executing lane's arena; growth beyond the mapped prefix goes through the
// host (which also enforces the per-thread capacity).
static std::uint8_t *cg_resolve(cg_lane *L, std::uint64_t A,
                                std::uint64_t Size) {
  cg_team *const T = L->team;
  const std::uint64_t Off = A & CG_OFF_MASK;
  switch (A >> 62) {
  case 1: // global
    if (Off + Size > T->global_size) {
      cg_trap(L, "global access out of bounds");
      return nullptr;
    }
    return T->global_base + Off;
  case 2: // shared
    if (Off + Size > T->shared_cap) {
      cg_trap(L, "shared memory access out of bounds");
      return nullptr;
    }
    return T->shared_base + Off;
  case 3: { // local
    const std::uint64_t Owner = (A >> 46) & 0xffffULL;
    if (T->debug_checks && Owner != L->tid) {
      std::snprintf(L->msg_buf, sizeof(L->msg_buf),
                    "cross-thread access to local memory (thread %u "
                    "dereferenced a pointer owned by thread %llu); such "
                    "variables must be globalized",
                    L->tid, static_cast<unsigned long long>(Owner));
      L->trap_msg = L->msg_buf;
      L->status = 2u;
      return nullptr;
    }
    if (Off + Size <= L->local_size)
      return L->local_base + Off;
    return T->host_local_data(T->host, L, Off, Size);
  }
  default: // invalid: null or a function address
    cg_trap(L, A == 0 ? "null pointer dereference"
                      : "dereference of a function address");
    return nullptr;
  }
}

// Interpreter atomicFetchModify: relaxed load + acq_rel/relaxed weak CAS.
template <typename U, typename FnT>
static std::uint64_t cg_atomic_rmw(std::uint8_t *P, FnT Fn) {
  auto *A = reinterpret_cast<std::atomic<U> *>(P);
  U Old = A->load(std::memory_order_relaxed);
  while (!A->compare_exchange_weak(
      Old, static_cast<U>(Fn(static_cast<std::uint64_t>(Old))),
      std::memory_order_acq_rel, std::memory_order_relaxed)) {
  }
  return static_cast<std::uint64_t>(Old);
}

// Interpreter atomicCas: acq_rel/relaxed strong CAS at storage width.
template <typename U>
static std::uint64_t cg_atomic_cas(std::uint8_t *P, std::uint64_t Expected,
                                   std::uint64_t Desired) {
  auto *A = reinterpret_cast<std::atomic<U> *>(P);
  U Exp = static_cast<U>(Expected);
  A->compare_exchange_strong(Exp, static_cast<U>(Desired),
                             std::memory_order_acq_rel,
                             std::memory_order_relaxed);
  return static_cast<std::uint64_t>(Exp);
}

)CGPRE";
  }

  void emitForwardDecl(const Function &Fn) {
    const std::uint32_t Idx = FnOrdinal.at(&Fn);
    if (Fn.hasAttr(FnAttr::Kernel)) {
      S += "static void cg_f" + std::to_string(Idx) + "(cg_lane *const L);\n";
      return;
    }
    S += "static std::uint64_t cg_f" + std::to_string(Idx) +
         "(cg_lane *const L";
    for (unsigned A = 0; A < Fn.numArgs(); ++A)
      S += ", std::uint64_t";
    S += ");\n";
  }

  //--- Function emission ----------------------------------------------------

  void setupFunction(const Function &Fn) {
    F = &Fn;
    Slots.clear();
    BlockIds.clear();
    BarrierSites.clear();
    NumSlots = 0;
    for (unsigned A = 0; A < Fn.numArgs(); ++A)
      Slots[Fn.arg(A)] = NumSlots++;
    std::uint32_t BlockId = 0;
    FnHasBarriers = false;
    for (const auto &BB : Fn.blocks()) {
      BlockIds[BB.get()] = BlockId++;
      for (std::size_t Idx = 0; Idx < BB->size(); ++Idx) {
        const Instruction *I = BB->inst(Idx);
        if (!I->type().isVoid())
          Slots[I] = NumSlots++;
        if (I->opcode() == Opcode::Barrier ||
            I->opcode() == Opcode::AlignedBarrier) {
          BarrierSites[I] = ++NextSite; // unique across the whole module
          FnHasBarriers = true;
        }
      }
    }
  }

  void emitFunction(const Function &Fn) {
    setupFunction(Fn);
    const std::uint32_t Idx = FnOrdinal.at(&Fn);
    KernelMode = Fn.hasAttr(FnAttr::Kernel);
    Arr = KernelMode ? "R" : "S";
    RetDflt = KernelMode ? "return;" : "return 0ULL;";

    S += "\n// @" + Fn.name() + "\n";
    if (KernelMode) {
      Out.Kernels[Fn.name()] = {"codesign_native_kernel_" +
                                    std::to_string(Idx),
                                NumSlots, FnHasBarriers};
      S += "static void cg_f" + std::to_string(Idx) + "(cg_lane *const L) {\n";
      line("cg_team *const T = L->team; (void)T;");
      line("std::uint64_t *const R = L->slots; (void)R;");
    } else {
      S += "static std::uint64_t cg_f" + std::to_string(Idx) +
           "(cg_lane *const L";
      for (unsigned A = 0; A < Fn.numArgs(); ++A)
        S += ", std::uint64_t cg_a" + std::to_string(A);
      S += ") {\n";
      line("cg_team *const T = L->team; (void)T;");
      line("std::uint64_t S[" +
           std::to_string(std::max<std::uint32_t>(NumSlots, 1)) +
           "] = {}; (void)S;");
      for (unsigned A = 0; A < Fn.numArgs(); ++A)
        line("S[" + std::to_string(Slots.at(Fn.arg(A))) + "] = cg_a" +
             std::to_string(A) + ";");
      line("const std::uint64_t cg_wm = L->local_top; (void)cg_wm;");
    }
    line("goto cg_bb" + std::to_string(BlockIds.at(Fn.entry())) + ";");
    for (const auto &BB : Fn.blocks())
      emitBlock(*BB);
    S += "}\n";
  }

  void emitBlock(const BasicBlock &BB) {
    S += "cg_bb" + std::to_string(BlockIds.at(&BB)) + ": ;\n";
    std::size_t Idx = 0;
    // Leading phis are assigned on the incoming edges.
    while (Idx < BB.size() && BB.inst(Idx)->opcode() == Opcode::Phi)
      ++Idx;
    for (; Idx < BB.size(); ++Idx)
      emitInstruction(BB.inst(Idx));
    // Interpreter safety net for blocks without a terminator.
    line(trapStmt("fell off the end of a basic block"));
  }

  /// Parallel phi assignment for the edge Pred -> Succ (the interpreter's
  /// executePhis: evaluate every incoming first, then write — and trap
  /// before any write when an incoming value is missing).
  [[nodiscard]] std::string edgeCopies(const BasicBlock *Pred,
                                       const BasicBlock *Succ) {
    std::vector<std::pair<std::string, std::string>> Items; // slot ref, expr
    for (std::size_t Idx = 0; Idx < Succ->size(); ++Idx) {
      const Instruction *Phi = Succ->inst(Idx);
      if (Phi->opcode() != Opcode::Phi)
        break;
      const Value *In = Phi->incomingFor(Pred);
      if (!In)
        return trapStmt("phi has no incoming value for predecessor") + " ";
      Items.emplace_back(slotRef(Phi), val(In));
    }
    if (Items.empty())
      return "";
    std::string Code = "{ ";
    for (std::size_t K = 0; K < Items.size(); ++K)
      Code += "const std::uint64_t cg_t" + std::to_string(K) + " = " +
              Items[K].second + "; ";
    for (std::size_t K = 0; K < Items.size(); ++K)
      Code += Items[K].first + " = cg_t" + std::to_string(K) + "; ";
    Code += "} ";
    return Code;
  }

  [[nodiscard]] std::string branchTo(const BasicBlock *Pred,
                                     const BasicBlock *Succ) {
    return edgeCopies(Pred, Succ) + "goto cg_bb" +
           std::to_string(BlockIds.at(Succ)) + ";";
  }

  //--- Instruction emission -------------------------------------------------

  void emitInstruction(const Instruction *I);
  void emitIntBinop(const Instruction *I);
  void emitAtomicRMW(const Instruction *I);
  void emitCmpXchg(const Instruction *I);
  void emitCall(const Instruction *I);
  void emitNativeOp(const Instruction *I);

  /// One call expression for target Callee (a known function with a body),
  /// or the interpreter's trap for declarations/arity mismatches. Appends
  /// statements assigning cg_v.
  [[nodiscard]] std::string callTarget(const Instruction *I,
                                       const Function *Callee) {
    if (Callee->isDeclaration())
      return trapStmt("call to unresolved external function '" +
                      Callee->name() + "'");
    if (Callee->numArgs() != I->numCallArgs())
      return trapStmt("indirect call argument count mismatch for '" +
                      Callee->name() + "'");
    if (Callee->hasAttr(FnAttr::Kernel))
      return trapStmt("native backend limit: call to a kernel entry");
    std::string Code =
        "cg_v = cg_f" + std::to_string(FnOrdinal.at(Callee)) + "(L";
    for (unsigned A = 0; A < Callee->numArgs(); ++A)
      Code += ", " + canonExpr(Callee->arg(A)->type(), val(I->operand(A + 1)));
    Code += ");";
    return Code;
  }

  void emitLaneEntry(const Function &Fn);
};

void Emitter::emitIntBinop(const Instruction *I) {
  const Type Ty = I->type();
  const std::string A = val(I->operand(0));
  const std::string B = val(I->operand(1));
  const std::string UA = zextExpr(Ty, A);
  const std::string UB = zextExpr(Ty, B);
  const std::string ShMask = Ty.kind() == TypeKind::I32 ? "31ULL" : "63ULL";
  switch (I->opcode()) {
  case Opcode::Add:
    line(setRes(I, canonExpr(Ty, "intops::addWrap(" + A + ", " + B + ")")));
    return;
  case Opcode::Sub:
    line(setRes(I, canonExpr(Ty, "intops::subWrap(" + A + ", " + B + ")")));
    return;
  case Opcode::Mul:
    line(setRes(I, canonExpr(Ty, "intops::mulWrap(" + A + ", " + B + ")")));
    return;
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::UDiv:
  case Opcode::URem: {
    const bool Signed =
        I->opcode() == Opcode::SDiv || I->opcode() == Opcode::SRem;
    const bool IsDiv =
        I->opcode() == Opcode::SDiv || I->opcode() == Opcode::UDiv;
    const std::string Fn = Signed ? (IsDiv ? "sdiv" : "srem")
                                  : (IsDiv ? "udiv" : "urem");
    const std::string &LhsE = Signed ? A : UA;
    const std::string &RhsE = Signed ? B : UB;
    line("{ std::uint64_t cg_r = 0;");
    line("  if (!intops::" + Fn + "(" + LhsE + ", " + RhsE + ", cg_r)) " +
         trapStmt(IsDiv ? "integer division by zero"
                        : "integer remainder by zero"));
    line("  " + setRes(I, canonExpr(Ty, "cg_r")) + " }");
    return;
  }
  case Opcode::And:
    line(setRes(I, canonExpr(Ty, "(" + A + ") & (" + B + ")")));
    return;
  case Opcode::Or:
    line(setRes(I, canonExpr(Ty, "(" + A + ") | (" + B + ")")));
    return;
  case Opcode::Xor:
    line(setRes(I, canonExpr(Ty, "(" + A + ") ^ (" + B + ")")));
    return;
  case Opcode::Shl:
    line(setRes(I, canonExpr(Ty, UA + " << (" + UB + " & " + ShMask + ")")));
    return;
  case Opcode::LShr:
    line(setRes(I, canonExpr(Ty, UA + " >> (" + UB + " & " + ShMask + ")")));
    return;
  case Opcode::AShr:
    line(setRes(I, canonExpr(Ty, "intops::ashr(" + A +
                                     ", static_cast<unsigned>(" + UB + " & " +
                                     ShMask + "))")));
    return;
  default:
    line(trapStmt("native backend limit: unsupported opcode"));
    return;
  }
}

void Emitter::emitAtomicRMW(const Instruction *I) {
  const Type Ty = I->type();
  const unsigned Size = Ty.sizeInBytes();
  const std::string SizeS = std::to_string(Size);
  line("{ const std::uint64_t cg_a = " + val(I->operand(0)) + ";");
  line("  std::uint8_t *const cg_p = cg_resolve(L, cg_a, " + SizeS + ");");
  line("  if (!cg_p) { " + RetDflt + " }");
  line("  const std::int64_t cg_val = static_cast<std::int64_t>(" +
       val(I->operand(1)) + ");");
  const std::string OldC =
      Ty.isInteger() ? canonExpr(Ty, "cg_old") : std::string("(cg_old)");
  line("  const auto cg_new = [&](std::uint64_t cg_old) -> std::uint64_t {");
  line("    const std::uint64_t cg_oldc = " + OldC + ";");
  line("    const std::int64_t cg_olds = "
       "static_cast<std::int64_t>(cg_oldc); (void)cg_olds;");
  line("    std::int64_t cg_n = 0;");
  switch (I->atomicOp()) {
  case AtomicOp::Add:
    line("    cg_n = static_cast<std::int64_t>(intops::addWrap(cg_oldc, "
         "static_cast<std::uint64_t>(cg_val)));");
    break;
  case AtomicOp::Max:
    line("    cg_n = cg_olds > cg_val ? cg_olds : cg_val;");
    break;
  case AtomicOp::Min:
    line("    cg_n = cg_olds < cg_val ? cg_olds : cg_val;");
    break;
  case AtomicOp::Exchange:
    line("    cg_n = cg_val;");
    break;
  }
  line("    return static_cast<std::uint64_t>(cg_n);");
  line("  };");
  line("  std::uint64_t cg_raw = 0;");
  if (Size == 4 || Size == 8) {
    const std::string U = Size == 4 ? "std::uint32_t" : "std::uint64_t";
    line("  if ((cg_a >> 62) == 1ULL && "
         "(reinterpret_cast<std::uintptr_t>(cg_p) % " +
         SizeS + ") == 0) {");
    line("    cg_raw = cg_atomic_rmw<" + U + ">(cg_p, cg_new);");
    line("  } else {");
  } else {
    line("  {");
  }
  line("    std::memcpy(&cg_raw, cg_p, " + SizeS + ");");
  line("    const std::uint64_t cg_nb = cg_new(cg_raw);");
  line("    std::memcpy(cg_p, &cg_nb, " + SizeS + ");");
  line("  }");
  const std::string Result =
      Ty.isInteger() ? canonExpr(Ty, "cg_raw") : std::string("cg_raw");
  line("  " + setRes(I, Result) + " }");
}

void Emitter::emitCmpXchg(const Instruction *I) {
  const Type Ty = I->type();
  const unsigned Size = Ty.sizeInBytes();
  const std::string SizeS = std::to_string(Size);
  line("{ const std::uint64_t cg_a = " + val(I->operand(0)) + ";");
  line("  std::uint8_t *const cg_p = cg_resolve(L, cg_a, " + SizeS + ");");
  line("  if (!cg_p) { " + RetDflt + " }");
  line("  const std::uint64_t cg_exp = " + val(I->operand(1)) + ";");
  line("  const std::uint64_t cg_des = " + val(I->operand(2)) + ";");
  line("  std::uint64_t cg_raw = 0;");
  if (Size == 4 || Size == 8) {
    const std::string U = Size == 4 ? "std::uint32_t" : "std::uint64_t";
    line("  if ((cg_a >> 62) == 1ULL && "
         "(reinterpret_cast<std::uintptr_t>(cg_p) % " +
         SizeS + ") == 0) {");
    line("    cg_raw = cg_atomic_cas<" + U + ">(cg_p, cg_exp, cg_des);");
    line("  } else {");
  } else {
    line("  {");
  }
  const std::string OldC =
      Ty.isInteger() ? canonExpr(Ty, "cg_raw") : std::string("cg_raw");
  line("    std::memcpy(&cg_raw, cg_p, " + SizeS + ");");
  line("    if (" + OldC + " == cg_exp) { std::memcpy(cg_p, &cg_des, " +
       SizeS + "); }");
  line("  }");
  line("  " + setRes(I, OldC) + " }");
}

void Emitter::emitCall(const Instruction *I) {
  line("{ std::uint64_t cg_v = 0; (void)cg_v;");
  if (const Function *Callee = I->calledFunction()) {
    line("  " + callTarget(I, Callee));
  } else {
    line("  const std::uint64_t cg_tgt = " + val(I->operand(0)) + ";");
    line("  if (cg_tgt == 0ULL || (cg_tgt >> 62) != 0ULL) " +
         trapStmt("indirect call to a non-function address"));
    line("  switch ((cg_tgt & CG_OFF_MASK) - 1ULL) {");
    std::uint32_t Idx = 0;
    for (const auto &Target : M.functions()) {
      line("  case " + std::to_string(Idx) + "ULL: " +
           (Target->numArgs() == I->numCallArgs() || Target->isDeclaration()
                ? callTarget(I, Target.get())
                : trapStmt("indirect call argument count mismatch for '" +
                           Target->name() + "'")) +
           " break;");
      ++Idx;
    }
    line("  default: " + trapStmt("indirect call to a non-function address"));
    line("  }");
  }
  line("  if (L->status != 0u) { " + RetDflt + " }");
  if (!I->type().isVoid())
    line("  " + setRes(I, canonExpr(I->type(), "cg_v")));
  line("}");
}

void Emitter::emitNativeOp(const Instruction *I) {
  const unsigned N = I->numOperands();
  line("{");
  if (N > 0) {
    std::string Init = "  const std::uint64_t cg_na[" + std::to_string(N) +
                       "] = {";
    for (unsigned A = 0; A < N; ++A)
      Init += (A ? ", " : "") + val(I->operand(A));
    Init += "};";
    line(Init);
  } else {
    line("  const std::uint64_t *cg_na = nullptr;");
  }
  line("  std::uint32_t cg_has = 0u; (void)cg_has;");
  line("  const std::uint64_t cg_v = T->host_native_op(T->host, L, " +
       std::to_string(I->imm()) + "LL, cg_na, " + std::to_string(N) +
       "u, &cg_has); (void)cg_v;");
  line("  if (L->status != 0u) { " + RetDflt + " }");
  if (!I->type().isVoid()) {
    line("  if (!cg_has) " +
         trapStmt("native op did not produce its declared result"));
    line("  " + setRes(I, canonExpr(I->type(), "cg_v")));
  }
  line("}");
}

void Emitter::emitInstruction(const Instruction *I) {
  switch (I->opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    emitIntBinop(I);
    return;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    const Type Ty = I->type();
    const char Op = I->opcode() == Opcode::FAdd   ? '+'
                    : I->opcode() == Opcode::FSub ? '-'
                    : I->opcode() == Opcode::FMul ? '*'
                                                  : '/';
    line(setRes(I, encfCall(Ty, decfCall(Ty, val(I->operand(0))) + " " + Op +
                                    " " +
                                    decfCall(Ty, val(I->operand(1))))));
    return;
  }
  case Opcode::ICmp: {
    const std::string A = val(I->operand(0));
    const std::string B = val(I->operand(1));
    const std::string SA = "static_cast<std::int64_t>(" + A + ")";
    const std::string SB = "static_cast<std::int64_t>(" + B + ")";
    std::string Cmp;
    switch (I->pred()) {
    case CmpPred::EQ:
      Cmp = "(" + A + ") == (" + B + ")";
      break;
    case CmpPred::NE:
      Cmp = "(" + A + ") != (" + B + ")";
      break;
    case CmpPred::SLT:
      Cmp = SA + " < " + SB;
      break;
    case CmpPred::SLE:
      Cmp = SA + " <= " + SB;
      break;
    case CmpPred::SGT:
      Cmp = SA + " > " + SB;
      break;
    case CmpPred::SGE:
      Cmp = SA + " >= " + SB;
      break;
    case CmpPred::ULT:
      Cmp = "(" + A + ") < (" + B + ")";
      break;
    case CmpPred::ULE:
      Cmp = "(" + A + ") <= (" + B + ")";
      break;
    case CmpPred::UGT:
      Cmp = "(" + A + ") > (" + B + ")";
      break;
    case CmpPred::UGE:
      Cmp = "(" + A + ") >= (" + B + ")";
      break;
    default:
      line(trapStmt("native backend limit: unsupported compare"));
      return;
    }
    line(setRes(I, "(" + Cmp + ") ? 1ULL : 0ULL"));
    return;
  }
  case Opcode::FCmp: {
    const Type Ty = I->operand(0)->type();
    const std::string A = decfCall(Ty, val(I->operand(0)));
    const std::string B = decfCall(Ty, val(I->operand(1)));
    std::string Op;
    switch (I->pred()) {
    case CmpPred::OEQ:
      Op = "==";
      break;
    case CmpPred::ONE:
      Op = "!=";
      break;
    case CmpPred::OLT:
      Op = "<";
      break;
    case CmpPred::OLE:
      Op = "<=";
      break;
    case CmpPred::OGT:
      Op = ">";
      break;
    case CmpPred::OGE:
      Op = ">=";
      break;
    default:
      line(trapStmt("native backend limit: unsupported compare"));
      return;
    }
    line(setRes(I, "(" + A + " " + Op + " " + B + ") ? 1ULL : 0ULL"));
    return;
  }
  case Opcode::Select:
    line(setRes(I, "(" + val(I->operand(0)) + ") ? (" + val(I->operand(1)) +
                       ") : (" + val(I->operand(2)) + ")"));
    return;
  case Opcode::ZExt:
    line(setRes(I, canonExpr(I->type(), zextExpr(I->operand(0)->type(),
                                                 val(I->operand(0))))));
    return;
  case Opcode::SExt:
  case Opcode::Trunc:
    line(setRes(I, canonExpr(I->type(), val(I->operand(0)))));
    return;
  case Opcode::SIToFP:
    line(setRes(I, encfCall(I->type(),
                            "static_cast<double>(static_cast<std::int64_t>(" +
                                val(I->operand(0)) + "))")));
    return;
  case Opcode::FPToSI:
    line(setRes(
        I, canonExpr(I->type(),
                     "static_cast<std::uint64_t>(intops::fpToI64(" +
                         decfCall(I->operand(0)->type(), val(I->operand(0))) +
                         "))")));
    return;
  case Opcode::FPCast:
    line(setRes(I, encfCall(I->type(), decfCall(I->operand(0)->type(),
                                                val(I->operand(0))))));
    return;
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    line(setRes(I, val(I->operand(0))));
    return;
  case Opcode::Alloca: {
    const std::string Size = std::to_string(I->imm()) + "ULL";
    line("{ const std::uint64_t cg_off = (L->local_top + 15ULL) & ~15ULL;");
    line("  if (cg_off + " + Size + " > T->local_cap) " +
         trapStmt("local memory exhausted"));
    line("  L->local_top = cg_off + " + Size + ";");
    line("  " +
         setRes(I, "(3ULL << 62) | ((static_cast<std::uint64_t>(L->tid) & "
                   "0xffffULL) << 46) | (cg_off & CG_OFF_MASK)") +
         " }");
    return;
  }
  case Opcode::Load: {
    const Type Ty = I->type();
    const std::string SizeS = std::to_string(Ty.sizeInBytes());
    line("{ std::uint8_t *const cg_p = cg_resolve(L, " + val(I->operand(0)) +
         ", " + SizeS + ");");
    line("  if (!cg_p) { " + RetDflt + " }");
    line("  std::uint64_t cg_v = 0; std::memcpy(&cg_v, cg_p, " + SizeS +
         ");");
    line("  " +
         setRes(I, Ty.isInteger() ? canonExpr(Ty, "cg_v")
                                  : std::string("cg_v")) +
         " }");
    return;
  }
  case Opcode::Store: {
    const std::string SizeS =
        std::to_string(I->operand(0)->type().sizeInBytes());
    line("{ std::uint8_t *const cg_p = cg_resolve(L, " + val(I->operand(1)) +
         ", " + SizeS + ");");
    line("  if (!cg_p) { " + RetDflt + " }");
    line("  const std::uint64_t cg_v = " + val(I->operand(0)) + ";");
    line("  std::memcpy(cg_p, &cg_v, " + SizeS + "); }");
    return;
  }
  case Opcode::Gep: {
    line("{ const std::uint64_t cg_a = " + val(I->operand(0)) + ";");
    line("  " +
         setRes(I, "(cg_a & ~CG_OFF_MASK) | (((cg_a & CG_OFF_MASK) + "
                   "static_cast<std::uint64_t>(static_cast<std::int64_t>(" +
                       val(I->operand(1)) + "))) & CG_OFF_MASK)") +
         " }");
    return;
  }
  case Opcode::AtomicRMW:
    emitAtomicRMW(I);
    return;
  case Opcode::CmpXchg:
    emitCmpXchg(I);
    return;
  case Opcode::Malloc:
    line(setRes(I, "T->host_malloc(T->host, " + val(I->operand(0)) + ")"));
    return;
  case Opcode::Free:
    line("{ const std::uint64_t cg_a = " + val(I->operand(0)) +
         "; if (cg_a != 0ULL) T->host_free(T->host, cg_a); }");
    return;
  case Opcode::Br:
    line(branchTo(I->parent(), I->blockOperand(0)));
    return;
  case Opcode::CondBr:
    line("if (" + val(I->operand(0)) + ") { " +
         branchTo(I->parent(), I->blockOperand(0)) + " } else { " +
         branchTo(I->parent(), I->blockOperand(1)) + " }");
    return;
  case Opcode::Ret:
    if (KernelMode) {
      line("L->local_top = 0; L->status = 1u; return;");
    } else {
      const std::string RV =
          I->numOperands() == 1 ? val(I->operand(0)) : std::string("0ULL");
      line("{ const std::uint64_t cg_rv = " + RV +
           "; L->local_top = cg_wm; return cg_rv; }");
    }
    return;
  case Opcode::Unreachable:
    line(trapStmt("unreachable executed"));
    return;
  case Opcode::Phi:
    line(trapStmt("phi encountered mid-block"));
    return;
  case Opcode::Call:
    emitCall(I);
    return;
  case Opcode::ThreadId:
    line(setRes(I, "static_cast<std::uint64_t>(L->tid)"));
    return;
  case Opcode::BlockId:
    line(setRes(I, "static_cast<std::uint64_t>(T->team_id)"));
    return;
  case Opcode::BlockDim:
    line(setRes(I, "static_cast<std::uint64_t>(T->num_threads)"));
    return;
  case Opcode::GridDim:
    line(setRes(I, "static_cast<std::uint64_t>(T->num_teams)"));
    return;
  case Opcode::WarpSize:
    line(setRes(I, "static_cast<std::uint64_t>(T->warp_size)"));
    return;
  case Opcode::Barrier:
  case Opcode::AlignedBarrier: {
    // Suspend this lane's fiber at the rendezvous; the host scheduler
    // releases it (status back to 0) once every live lane has arrived, and
    // execution continues right here — whatever the call depth.
    const std::string SiteS = std::to_string(BarrierSites.at(I));
    line("L->barrier_site = " + SiteS + "u; L->barrier_aligned = " +
         (I->opcode() == Opcode::AlignedBarrier ? "1u" : "0u") +
         "; L->status = 3u; T->host_suspend(T->host, L);");
    return;
  }
  case Opcode::Assume:
    line("if (T->debug_checks && (" + val(I->operand(0)) + ") == 0ULL) " +
         trapStmt("compiler assumption violated at runtime (in @" +
                  F->name() + ", block '" + I->parent()->name() + "')"));
    return;
  case Opcode::AssertFail:
    line("if (T->debug_checks && (" + val(I->operand(0)) + ") == 0ULL) " +
         trapStmt("assertion failed: " + I->str()));
    return;
  case Opcode::Trap:
    line(trapStmt("trap executed"));
    return;
  case Opcode::NativeOp:
    emitNativeOp(I);
    return;
  }
  line(trapStmt("native backend limit: unsupported opcode"));
}

/// The exported per-kernel lane entry: what the host scheduler runs on
/// each lane's fiber. Scheduling (the interpreter's run() loop: strict
/// lane-order sweeps, trap-stops-team, livelock detection, the barrier
/// rendezvous) lives host-side in NativeBackend.cpp.
void Emitter::emitLaneEntry(const Function &Fn) {
  S += "\nextern \"C\" void " + Out.Kernels.at(Fn.name()).Symbol +
       "(void *LanePtr) {\n  cg_f" + std::to_string(FnOrdinal.at(&Fn)) +
       "(static_cast<cg_lane *>(LanePtr));\n}\n";
}

} // namespace

NativeModuleSource emitNativeModule(const ir::Module &M) {
  return Emitter(M).run();
}

} // namespace codesign::exec
