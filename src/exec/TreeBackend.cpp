//===- exec/TreeBackend.cpp - Tree-walking interpreter backend -------------===//
//
// The original IR-walking engine as an exec::Backend. It needs no
// preparation or binding state: every team interprets the instruction tree
// directly. Kept as the semantic reference the other backends are
// differentially tested against.
//
//===----------------------------------------------------------------------===//
#include "exec/Backend.hpp"
#include "exec/BuiltinBackends.hpp"

namespace codesign::exec {

namespace {

class TreeBackend final : public Backend {
public:
  std::string_view name() const override { return "tree"; }

  Expected<void> prepareModule(const vgpu::ModuleImage &,
                               const LaunchEnv &) override {
    return Expected<void>::success();
  }

  Expected<std::unique_ptr<BoundKernel>>
  bindKernel(const vgpu::ModuleImage &, const ir::Function *,
             const LaunchEnv &) override {
    return std::make_unique<BoundKernel>();
  }

  void runTeam(BoundKernel &, const LaunchEnv &Env,
               const vgpu::ModuleImage &Image, const ir::Function *Kernel,
               std::span<const std::uint64_t> Args, std::uint32_t TeamId,
               std::uint32_t NumTeams, std::uint32_t NumThreads,
               vgpu::LaunchMetrics &Metrics, vgpu::LaunchProfile *Profile,
               TeamOutcome &Out) override {
    vgpu::TeamRunOutcome R =
        vgpu::runTreeTeam(Env.Config, Env.GM, Env.Registry, Image, TeamId,
                          NumTeams, NumThreads, Kernel, Args, Metrics,
                          Profile);
    Out.Err = std::move(R.Err);
    Out.Cycles = R.Cycles;
  }
};

} // namespace

std::unique_ptr<Backend> makeTreeBackend() {
  return std::make_unique<TreeBackend>();
}

} // namespace codesign::exec
