//===- oldrt/OldDeviceRTL.hpp - Legacy device runtime (baseline) ----------===//
//
// The "Old RT (Nightly)" baseline of the paper's evaluation: a runtime in
// the style of the original CUDA-compiled LLVM device RTL. Its defining
// properties, mirrored here:
//
//  * Opaque to the optimizer: entry points carry NoInline and the optimizer
//    treats them as unknown calls (the original was compiled by NVCC and
//    linked as machine code, invisible to openmp-opt).
//  * A pre-allocated data-sharing slab plus a heavyweight team context in
//    static shared memory (the constant 2336 B in Figure 11).
//  * Eager initialization: the kernel-init entry loops over every possible
//    thread slot, populating bookkeeping the common case never needs —
//    the "pay for what you don't use" problem Figure 1 contrasts against.
//  * Memory-based work-sharing API (init/fini with lower/upper/stride
//    out-parameters) that forces per-kernel local traffic and prevents the
//    Figure 5 loop structure from collapsing.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <memory>

#include "ir/Module.hpp"

namespace codesign::oldrt {

/// Generate the legacy runtime module, link-compatible with the frontend's
/// legacy lowering path.
std::unique_ptr<ir::Module> buildOldDeviceRTL();

} // namespace codesign::oldrt
