#include "oldrt/OldDeviceRTL.hpp"

#include "ir/IRBuilder.hpp"
#include "rt/RuntimeABI.hpp"

namespace codesign::oldrt {

using namespace ir;
using rt::MaxThreadsPerTeam;

namespace {

/// Field offsets inside @__old_omp_team_context. Private to the legacy
/// runtime; nothing else pokes at this state (it is opaque by design).
struct CtxLayout {
  static constexpr std::int64_t ParallelLevel = 0; ///< i32
  static constexpr std::int64_t NumThreads = 4;    ///< i32
  static constexpr std::int64_t WorkFn = 8;        ///< ptr
  static constexpr std::int64_t WorkArgs = 16;     ///< ptr
  static constexpr std::int64_t SlabTop = 24;      ///< i64
  static constexpr std::int64_t SavedNumThreads = 32; ///< i32
};

/// Bytes at the head of the slab reserved for per-thread bookkeeping
/// (one u64 per possible thread) — eagerly initialized by kernel init.
constexpr std::int64_t SlabBookkeepingBytes = 8 * MaxThreadsPerTeam;

class OldRTLBuilder {
public:
  OldRTLBuilder() : M(std::make_unique<Module>("old_device_rtl")), B(*M) {}

  std::unique_ptr<Module> run() {
    Slab = M->createGlobal(std::string(rt::OldDataSharingSlabName),
                           AddrSpace::Shared, rt::OldSlabBytes, 16);
    Ctx = M->createGlobal(std::string(rt::OldTeamContextName),
                          AddrSpace::Shared, rt::OldTeamContextBytes, 16);
    emitInit();
    emitDeinit();
    emitGetThreadNum();
    emitGetNumThreads();
    emitWorkFnHelpers();
    emitParallel();
    emitEndParallel();
    emitForStaticInit();
    emitForStaticFini();
    emitDistributeStaticInit();
    emitDataSharing();
    return std::move(M);
  }

private:
  /// Every legacy entry point is NoInline: the optimizer must treat calls
  /// to it as unknown (the original RTL was a pre-compiled CUDA binary).
  Function *makeFn(std::string_view Name, Type Ret, std::vector<Type> Params) {
    Function *F = M->createFunction(std::string(Name), Ret, std::move(Params));
    F->addAttr(FnAttr::NoInline);
    F->addAttr(FnAttr::Internal);
    B.setInsertPoint(F->createBlock("entry"));
    return F;
  }

  Value *ctxField(std::int64_t Off) { return B.gep(Ctx, Off); }

  /// __old_kmpc_kernel_init: eager, unconditional setup. The main thread
  /// initializes the *entire* per-thread bookkeeping table whether or not
  /// any data sharing will happen — the pay-even-if-unused baseline.
  void emitInit() {
    Function *F = makeFn(rt::OldInitName, Type::voidTy(), {Type::i32()});
    Value *Tid = B.threadId();
    Value *Dim = B.blockDim();
    Value *IsMain = B.icmpEQ(Tid, B.sub(Dim, B.i32(1)));
    BasicBlock *Setup = F->createBlock("init.setup");
    BasicBlock *LoopBB = F->createBlock("init.loop");
    BasicBlock *LoopEnd = F->createBlock("init.loopend");
    BasicBlock *Wait = F->createBlock("init.wait");
    B.condBr(IsMain, Setup, Wait);

    B.setInsertPoint(Setup);
    B.store(B.i32(0), ctxField(CtxLayout::ParallelLevel));
    B.store(B.sub(Dim, B.i32(1)), ctxField(CtxLayout::NumThreads));
    B.store(B.nullPtr(), ctxField(CtxLayout::WorkFn));
    B.store(B.nullPtr(), ctxField(CtxLayout::WorkArgs));
    B.store(B.i64(SlabBookkeepingBytes), ctxField(CtxLayout::SlabTop));
    B.br(LoopBB);

    // for (i = 0; i < MaxThreads; ++i) slab_bookkeeping[i] = 0;
    B.setInsertPoint(LoopBB);
    Instruction *IV = B.phi(Type::i64());
    B.store(B.i64(0), B.gep(Slab, B.mul(IV, B.i64(8))));
    Value *Next = B.add(IV, B.i64(1));
    Value *Again =
        B.icmpSLT(Next, B.i64(static_cast<std::int64_t>(MaxThreadsPerTeam)));
    B.condBr(Again, LoopBB, LoopEnd);
    IV->addIncoming(B.i64(0), Setup);
    IV->addIncoming(Next, LoopBB);

    B.setInsertPoint(LoopEnd);
    B.br(Wait);
    B.setInsertPoint(Wait);
    B.barrier(0);
    B.retVoid();
  }

  void emitDeinit() {
    makeFn(rt::OldDeinitName, Type::voidTy(), {});
    B.store(B.nullPtr(), ctxField(CtxLayout::WorkFn));
    B.barrier(1);
    B.retVoid();
  }

  void emitGetThreadNum() {
    Function *F = makeFn(rt::OldGetThreadNumName, Type::i32(), {});
    Value *Lv = B.load(Type::i32(), ctxField(CtxLayout::ParallelLevel));
    BasicBlock *Serial = F->createBlock("gtn.serial");
    BasicBlock *InPar = F->createBlock("gtn.inpar");
    B.condBr(B.icmpEQ(Lv, B.i32(0)), Serial, InPar);
    B.setInsertPoint(Serial);
    B.ret(B.i32(0));
    B.setInsertPoint(InPar);
    B.ret(B.threadId());
  }

  void emitGetNumThreads() {
    Function *F = makeFn(rt::OldGetNumThreadsName, Type::i32(), {});
    Value *Lv = B.load(Type::i32(), ctxField(CtxLayout::ParallelLevel));
    BasicBlock *Serial = F->createBlock("gnt.serial");
    BasicBlock *InPar = F->createBlock("gnt.inpar");
    B.condBr(B.icmpEQ(Lv, B.i32(0)), Serial, InPar);
    B.setInsertPoint(Serial);
    B.ret(B.i32(1));
    B.setInsertPoint(InPar);
    B.ret(B.load(Type::i32(), ctxField(CtxLayout::NumThreads)));
  }

  void emitWorkFnHelpers() {
    {
      makeFn("__old_kmpc_workfn_wait", Type::ptr(), {});
      B.barrier(1);
      B.ret(B.load(Type::ptr(), ctxField(CtxLayout::WorkFn)));
    }
    {
      makeFn("__old_kmpc_workfn_args", Type::ptr(), {});
      B.ret(B.load(Type::ptr(), ctxField(CtxLayout::WorkArgs)));
    }
    {
      makeFn("__old_kmpc_workfn_done", Type::voidTy(), {});
      B.barrier(2);
      B.retVoid();
    }
  }

  /// __old_kmpc_kernel_parallel: fork. Unlike the new runtime this
  /// re-reads and re-writes the whole context and uses an extra barrier
  /// pair around the work publication.
  void emitParallel() {
    Function *F = makeFn(rt::OldParallelName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::i32()});
    Value *Dim = B.blockDim();
    Value *NWorkers = B.sub(Dim, B.i32(1));
    Value *HasClause = B.cmp(CmpPred::SGT, F->arg(2), B.i32(0));
    Value *Clamped = B.select(B.cmp(CmpPred::SLT, F->arg(2), NWorkers),
                              F->arg(2), NWorkers);
    Value *Size = B.select(HasClause, Clamped, NWorkers);
    // Save/restore dance the legacy runtime performed unconditionally.
    Value *Saved = B.load(Type::i32(), ctxField(CtxLayout::NumThreads));
    B.store(Saved, ctxField(CtxLayout::SavedNumThreads));
    B.store(Size, ctxField(CtxLayout::NumThreads));
    B.store(B.i32(1), ctxField(CtxLayout::ParallelLevel));
    B.store(F->arg(1), ctxField(CtxLayout::WorkArgs));
    B.store(F->arg(0), ctxField(CtxLayout::WorkFn));
    B.barrier(1); // release workers
    B.barrier(2); // join
    B.retVoid();
  }

  /// __old_kmpc_kernel_end_parallel: the legacy fork epilogue, a separate
  /// opaque call with its own context traffic.
  void emitEndParallel() {
    makeFn(rt::OldEndParallelName, Type::voidTy(), {});
    Value *Saved = B.load(Type::i32(), ctxField(CtxLayout::SavedNumThreads));
    B.store(Saved, ctxField(CtxLayout::NumThreads));
    B.store(B.i32(0), ctxField(CtxLayout::ParallelLevel));
    B.retVoid();
  }

  /// __old_kmpc_for_static_init(plb, pub, pstride, n): blocked static
  /// schedule returned through memory out-parameters — the ABI shape that
  /// keeps bounds in local memory and blocks loop collapse (Section III-F
  /// explains why the new runtime abandoned it).
  void emitForStaticInit() {
    Function *F = makeFn(rt::OldForStaticInitName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::ptr(), Type::i64()});
    Value *N = F->arg(3);
    Value *NT = B.zext(B.load(Type::i32(), ctxField(CtxLayout::NumThreads)),
                       Type::i64());
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Chunk = B.sdiv(B.sub(B.add(N, NT), B.i64(1)), NT);
    Value *Lb = B.mul(Tid, Chunk);
    Value *UbRaw = B.add(Lb, Chunk);
    Value *Ub = B.select(B.cmp(CmpPred::SLT, UbRaw, N), UbRaw, N);
    B.store(Lb, F->arg(0));
    B.store(Ub, F->arg(1));
    B.store(B.i64(1), F->arg(2));
    B.retVoid();
  }

  void emitForStaticFini() {
    makeFn(rt::OldForStaticFiniName, Type::voidTy(), {});
    B.barrier(3);
    B.retVoid();
  }

  /// Combined distribute schedule across the whole league, same
  /// memory-out-parameter ABI.
  void emitDistributeStaticInit() {
    Function *F = makeFn(rt::OldDistributeInitName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::ptr(), Type::i64()});
    Value *N = F->arg(3);
    Value *NWorkers = B.zext(
        B.load(Type::i32(), ctxField(CtxLayout::NumThreads)), Type::i64());
    Value *Bid = B.zext(B.blockId(), Type::i64());
    Value *NB = B.zext(B.gridDim(), Type::i64());
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Total = B.mul(NB, NWorkers);
    Value *Gid = B.add(B.mul(Bid, NWorkers), Tid);
    Value *Chunk = B.sdiv(B.sub(B.add(N, Total), B.i64(1)), Total);
    Value *Lb = B.mul(Gid, Chunk);
    Value *UbRaw = B.add(Lb, Chunk);
    Value *Ub = B.select(B.cmp(CmpPred::SLT, UbRaw, N), UbRaw, N);
    B.store(Lb, F->arg(0));
    B.store(Ub, F->arg(1));
    B.store(B.i64(1), F->arg(2));
    B.retVoid();
  }

  /// Data-sharing slab push/pop (variable globalization support). Requests
  /// that do not fit the static slab spill to device global memory — the
  /// legacy runtime's notoriously slow fallback path.
  void emitDataSharing() {
    {
      Function *F = makeFn("__old_kmpc_data_sharing_push", Type::ptr(),
                           {Type::i64()});
      Value *Aligned =
          B.and_(B.add(F->arg(0), B.i64(15)), B.i64(~std::int64_t{15}));
      Value *Old = B.atomicRMW(AtomicOp::Add, ctxField(CtxLayout::SlabTop),
                               Aligned);
      Value *Fits = B.cmp(
          CmpPred::ULE, B.add(Old, Aligned),
          B.i64(static_cast<std::int64_t>(rt::OldSlabBytes)));
      BasicBlock *SlabBB = F->createBlock("push.slab");
      BasicBlock *HeapBB = F->createBlock("push.heap");
      B.condBr(Fits, SlabBB, HeapBB);
      B.setInsertPoint(SlabBB);
      B.ret(B.gep(Slab, Old));
      B.setInsertPoint(HeapBB);
      B.atomicRMW(AtomicOp::Add, ctxField(CtxLayout::SlabTop),
                  B.sub(B.i64(0), Aligned));
      B.ret(B.mallocOp(F->arg(0)));
    }
    {
      Function *F = makeFn("__old_kmpc_data_sharing_pop", Type::voidTy(),
                           {Type::ptr(), Type::i64()});
      Value *Tag = B.lshr(B.ptrToInt(F->arg(0)), B.i64(62));
      Value *IsShared = B.icmpEQ(Tag, B.i64(2));
      BasicBlock *SlabBB = F->createBlock("pop.slab");
      BasicBlock *HeapBB = F->createBlock("pop.heap");
      B.condBr(IsShared, SlabBB, HeapBB);
      B.setInsertPoint(SlabBB);
      Value *Aligned =
          B.and_(B.add(F->arg(1), B.i64(15)), B.i64(~std::int64_t{15}));
      B.atomicRMW(AtomicOp::Add, ctxField(CtxLayout::SlabTop),
                  B.sub(B.i64(0), Aligned));
      B.retVoid();
      B.setInsertPoint(HeapBB);
      B.freeOp(F->arg(0));
      B.retVoid();
    }
  }

  std::unique_ptr<Module> M;
  IRBuilder B;
  GlobalVariable *Slab = nullptr;
  GlobalVariable *Ctx = nullptr;
};

} // namespace

std::unique_ptr<Module> buildOldDeviceRTL() { return OldRTLBuilder().run(); }

} // namespace codesign::oldrt
