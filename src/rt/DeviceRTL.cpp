#include "rt/DeviceRTL.hpp"

#include "ir/IRBuilder.hpp"
#include "rt/RuntimeABI.hpp"

namespace codesign::rt {

using namespace ir;

namespace {

/// Emits the runtime module. Method-per-entry-point; shared helpers for the
/// conditional-write and assert-or-assume idioms.
class DeviceRTLBuilder {
public:
  explicit DeviceRTLBuilder(const RTLOptions &Options)
      : Options(Options), M(std::make_unique<Module>("device_rtl")), B(*M) {}

  std::unique_ptr<Module> run() {
    createGlobals();
    emitTrace();
    emitAllocShared();
    emitFreeShared();
    emitGetLevel();
    emitIcvGetters();
    emitThreadStatePush();
    emitThreadStatePop();
    emitSetNumThreads();
    emitTargetInit();
    emitTargetDeinit();
    emitWorkFnHelpers();
    emitSpmdParallelBeginEnd();
    emitBroadcastPtr();
    emitParallel();
    emitDistributeForStaticLoop();
    emitForStaticLoop();
    emitDistributeForGenericLoop();
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  void createGlobals() {
    SpmdFlag = M->createGlobal(std::string(SpmdFlagName), AddrSpace::Shared, 4);
    TeamState = M->createGlobal(std::string(TeamStateName), AddrSpace::Shared,
                                TeamStateLayout::Size);
    ThreadStates = M->createGlobal(std::string(ThreadStatesName),
                                   AddrSpace::Shared, 8 * MaxThreadsPerTeam);
    SharedStack = M->createGlobal(std::string(SharedStackName),
                                  AddrSpace::Shared, SharedStackBytes, 16);
    StackTop = M->createGlobal(std::string(StackTopName), AddrSpace::Shared, 8);
    Dummy = M->createGlobal(std::string(DummyName), AddrSpace::Shared, 8);
    BcastSlot =
        M->createGlobal(std::string(BroadcastSlotName), AddrSpace::Shared, 8);

    // Compile-time configuration; the frontend emits the same globals into
    // the application module with the user's values, which take precedence
    // at link time. Defaults: release build, no assumptions.
    auto *DebugKind = M->createGlobal(std::string(DebugKindName),
                                      AddrSpace::Constant, 4);
    DebugKind->setConstantFlag(true);
    auto *TeamsOversub = M->createGlobal(std::string(AssumeTeamsOversubName),
                                         AddrSpace::Constant, 4);
    TeamsOversub->setConstantFlag(true);
    auto *ThreadsOversub = M->createGlobal(
        std::string(AssumeThreadsOversubName), AddrSpace::Constant, 4);
    ThreadsOversub->setConstantFlag(true);

    // Host-readable per-entry-point trace counters.
    auto *Trace = M->createGlobal(
        std::string(TraceCountsName), AddrSpace::Global,
        8 * static_cast<std::uint64_t>(TraceSlot::NumSlots));
    Trace->setInternal(false); // the host runtime reads it back
  }

  //===--------------------------------------------------------------------===//
  // Shared emission idioms
  //===--------------------------------------------------------------------===//

  /// Create an entry point with the standard attributes.
  Function *makeFn(std::string_view Name, Type Ret, std::vector<Type> Params) {
    Function *F = M->createFunction(std::string(Name), Ret, std::move(Params));
    F->addAttr(FnAttr::AlwaysInline);
    F->addAttr(FnAttr::Internal);
    B.setInsertPoint(F->createBlock("entry"));
    return F;
  }

  /// Pointer to a field of the team state.
  Value *teamField(std::int64_t Offset) { return B.gep(TeamState, Offset); }

  /// Conditional write via dummy pointer (Figure 7b): the store always
  /// executes; the *location* is conditional. This keeps the write
  /// dominating the following broadcast barrier.
  void condWrite(Value *Ptr, Value *V, Value *Cond) {
    Value *Target = B.select(Cond, Ptr, Dummy);
    B.store(V, Target);
  }

  /// Debug-aware check (Section III-G): assertion in debug builds, plain
  /// assumption in release builds. The branch on @__omp_rtl_debug_kind is
  /// statically folded by the optimizer either way.
  void assertOrAssume(Function *F, Value *Cond, std::string Msg) {
    Value *DK = B.load(Type::i32(), M->findGlobal(DebugKindName));
    Value *Checking =
        B.icmpNE(B.and_(DK, B.i32(DebugAssertions)), B.i32(0));
    BasicBlock *CheckBB = F->createBlock("assert.check");
    BasicBlock *AssumeBB = F->createBlock("assert.assume");
    BasicBlock *ContBB = F->createBlock("assert.cont");
    B.condBr(Checking, CheckBB, AssumeBB);
    B.setInsertPoint(CheckBB);
    B.assertCond(Cond, std::move(Msg));
    B.br(ContBB);
    B.setInsertPoint(AssumeBB);
    B.assume(Cond);
    B.br(ContBB);
    B.setInsertPoint(ContBB);
  }

  /// Call the trace hook with a slot id.
  void trace(TraceSlot Slot) {
    B.call(TraceFn, {B.i64(static_cast<std::int64_t>(Slot))});
  }

  /// Pointer to this thread's slot in the thread-states array.
  Value *threadStateSlot() {
    Value *Tid = B.zext(B.threadId(), Type::i64());
    return B.gep(ThreadStates, B.mul(Tid, B.i64(8)));
  }

  //===--------------------------------------------------------------------===//
  // Entry points
  //===--------------------------------------------------------------------===//

  /// __kmpc_trace(slot): count runtime entries when function tracing is
  /// enabled (debug kind bit 1). Statically dead in release builds.
  void emitTrace() {
    TraceFn = makeFn("__kmpc_trace", Type::voidTy(), {Type::i64()});
    Function *F = TraceFn;
    Value *DK = B.load(Type::i32(), M->findGlobal(DebugKindName));
    Value *Tracing =
        B.icmpNE(B.and_(DK, B.i32(DebugFunctionTracing)), B.i32(0));
    BasicBlock *DoBB = F->createBlock("trace.do");
    BasicBlock *Done = F->createBlock("trace.done");
    B.condBr(Tracing, DoBB, Done);
    B.setInsertPoint(DoBB);
    Value *Slot =
        B.gep(M->findGlobal(TraceCountsName), B.mul(F->arg(0), B.i64(8)));
    B.atomicRMW(AtomicOp::Add, Slot, B.i64(1));
    B.br(Done);
    B.setInsertPoint(Done);
    B.retVoid();
  }

  /// __kmpc_alloc_shared(size): bump the shared stack; fall back to the
  /// device heap when full (Section III-D).
  void emitAllocShared() {
    Function *F = makeFn(AllocSharedName, Type::ptr(), {Type::i64()});
    // Not AlwaysInline: globalization elimination (Section IV-A2) must
    // still see __kmpc_alloc_shared call sites to demote them; LLVM
    // likewise inlines the data-sharing entry points late.
    F->removeAttr(FnAttr::AlwaysInline);
    trace(TraceSlot::AllocShared);
    Value *Aligned =
        B.and_(B.add(F->arg(0), B.i64(15)), B.i64(~std::int64_t{15}));
    Value *Old = B.atomicRMW(AtomicOp::Add, StackTop, Aligned);
    Value *NewTop = B.add(Old, Aligned);
    Value *Fits = B.cmp(CmpPred::ULE, NewTop,
                        B.i64(static_cast<std::int64_t>(SharedStackBytes)));
    BasicBlock *StackBB = F->createBlock("alloc.stack");
    BasicBlock *HeapBB = F->createBlock("alloc.heap");
    B.condBr(Fits, StackBB, HeapBB);
    B.setInsertPoint(StackBB);
    B.ret(B.gep(SharedStack, Old));
    B.setInsertPoint(HeapBB);
    // Roll back the reservation, then take the slow path.
    B.atomicRMW(AtomicOp::Add, StackTop, B.sub(B.i64(0), Aligned));
    B.ret(B.mallocOp(F->arg(0)));
  }

  /// __kmpc_free_shared(ptr, size): LIFO-release stack memory; free heap
  /// fallbacks. Stack pointers are recognized by their address-space tag.
  void emitFreeShared() {
    Function *F = makeFn(FreeSharedName, Type::voidTy(),
                         {Type::ptr(), Type::i64()});
    F->removeAttr(FnAttr::AlwaysInline); // see emitAllocShared
    trace(TraceSlot::FreeShared);
    Value *Tag = B.lshr(B.ptrToInt(F->arg(0)), B.i64(62));
    Value *IsShared = B.icmpEQ(Tag, B.i64(2));
    BasicBlock *StackBB = F->createBlock("free.stack");
    BasicBlock *HeapBB = F->createBlock("free.heap");
    B.condBr(IsShared, StackBB, HeapBB);
    B.setInsertPoint(StackBB);
    Value *Aligned =
        B.and_(B.add(F->arg(1), B.i64(15)), B.i64(~std::int64_t{15}));
    B.atomicRMW(AtomicOp::Add, StackTop, B.sub(B.i64(0), Aligned));
    B.retVoid();
    B.setInsertPoint(HeapBB);
    B.freeOp(F->arg(0));
    B.retVoid();
  }

  /// Shared lookup skeleton for ICV getters: load this thread's state
  /// pointer; NULL redirects transparently to the team state (Figure 3).
  Value *icvLoad(Function *F, std::int64_t ThreadOff, std::int64_t TeamOff,
                 const char *Tag) {
    Value *TS = B.load(Type::ptr(), threadStateSlot());
    Value *Has = B.icmpNE(B.ptrToInt(TS), B.i64(0));
    BasicBlock *ThreadBB = F->createBlock(std::string(Tag) + ".thread");
    BasicBlock *TeamBB = F->createBlock(std::string(Tag) + ".team");
    BasicBlock *Merge = F->createBlock(std::string(Tag) + ".merge");
    B.condBr(Has, ThreadBB, TeamBB);
    B.setInsertPoint(ThreadBB);
    Value *FromThread = B.load(Type::i32(), B.gep(TS, ThreadOff));
    B.br(Merge);
    B.setInsertPoint(TeamBB);
    Value *FromTeam = B.load(Type::i32(), teamField(TeamOff));
    B.br(Merge);
    B.setInsertPoint(Merge);
    Instruction *Phi = B.phi(Type::i32());
    Phi->addIncoming(FromThread, ThreadBB);
    Phi->addIncoming(FromTeam, TeamBB);
    return Phi;
  }

  /// omp_get_level().
  void emitGetLevel() {
    GetLevelFn = makeFn(GetLevelName, Type::i32(), {});
    Value *Lv = icvLoad(GetLevelFn, ThreadStateLayout::LevelsVar,
                        TeamStateLayout::LevelsVar, "lv");
    B.ret(Lv);
  }

  void emitIcvGetters() {
    {
      Function *F = makeFn(GetThreadNumName, Type::i32(), {});
      Value *Lv = B.call(GetLevelFn, {});
      Value *AtOne = B.icmpEQ(Lv, B.i32(1));
      BasicBlock *InPar = F->createBlock("tn.inpar");
      BasicBlock *Serial = F->createBlock("tn.serial");
      B.condBr(AtOne, InPar, Serial);
      B.setInsertPoint(InPar);
      B.ret(B.threadId());
      B.setInsertPoint(Serial);
      B.ret(B.i32(0));
    }
    {
      Function *F = makeFn(GetNumThreadsName, Type::i32(), {});
      Value *Lv = B.call(GetLevelFn, {});
      Value *AtOne = B.icmpEQ(Lv, B.i32(1));
      BasicBlock *InPar = F->createBlock("nt.inpar");
      BasicBlock *Serial = F->createBlock("nt.serial");
      B.condBr(AtOne, InPar, Serial);
      B.setInsertPoint(InPar);
      B.ret(B.load(Type::i32(), teamField(TeamStateLayout::ParallelTeamSize)));
      B.setInsertPoint(Serial);
      B.ret(B.i32(1));
    }
    {
      makeFn(GetTeamNumName, Type::i32(), {});
      B.ret(B.blockId());
    }
    {
      makeFn(GetNumTeamsName, Type::i32(), {});
      B.ret(B.gridDim());
    }
    {
      makeFn(InParallelName, Type::i32(), {});
      Value *Lv = B.call(GetLevelFn, {});
      B.ret(B.zext(B.cmp(CmpPred::SGT, Lv, B.i32(0)), Type::i32()));
    }
  }

  /// __kmpc_thread_state_push(): materialize an individual thread ICV state
  /// on the shared stack, copying the most recent state (Section III-C).
  void emitThreadStatePush() {
    ThreadStatePushFn =
        makeFn("__kmpc_thread_state_push", Type::voidTy(), {});
    Function *F = ThreadStatePushFn;
    // Kept out-of-line: thread states are the slow path by design
    // (Section III-C), and keeping the call visible lets the optimizer
    // prove them absent instead of chasing inlined stack traffic.
    F->removeAttr(FnAttr::AlwaysInline);
    trace(TraceSlot::ThreadStatePush);
    Value *Slot = threadStateSlot();
    Value *TS = B.load(Type::ptr(), Slot);
    Value *NewState =
        B.call(M->findFunction(AllocSharedName), {B.i64(ThreadStateLayout::Size)});
    Value *Has = B.icmpNE(B.ptrToInt(TS), B.i64(0));
    BasicBlock *FromThread = F->createBlock("push.fromthread");
    BasicBlock *FromTeam = F->createBlock("push.fromteam");
    BasicBlock *Done = F->createBlock("push.done");
    B.condBr(Has, FromThread, FromTeam);

    B.setInsertPoint(FromThread);
    for (auto [Src, Dst] :
         {std::pair{ThreadStateLayout::NThreadsVar,
                    ThreadStateLayout::NThreadsVar},
          std::pair{ThreadStateLayout::LevelsVar, ThreadStateLayout::LevelsVar},
          std::pair{ThreadStateLayout::ActiveLevelsVar,
                    ThreadStateLayout::ActiveLevelsVar}})
      B.store(B.load(Type::i32(), B.gep(TS, Src)), B.gep(NewState, Dst));
    B.br(Done);

    B.setInsertPoint(FromTeam);
    B.store(B.load(Type::i32(), teamField(TeamStateLayout::NThreadsVar)),
            B.gep(NewState, ThreadStateLayout::NThreadsVar));
    B.store(B.load(Type::i32(), teamField(TeamStateLayout::LevelsVar)),
            B.gep(NewState, ThreadStateLayout::LevelsVar));
    B.store(B.load(Type::i32(), teamField(TeamStateLayout::ActiveLevelsVar)),
            B.gep(NewState, ThreadStateLayout::ActiveLevelsVar));
    B.br(Done);

    B.setInsertPoint(Done);
    B.store(TS, B.gep(NewState, ThreadStateLayout::Previous));
    B.store(NewState, Slot);
    B.retVoid();
  }

  /// __kmpc_thread_state_pop(): drop the most recent thread state.
  void emitThreadStatePop() {
    ThreadStatePopFn = makeFn("__kmpc_thread_state_pop", Type::voidTy(), {});
    ThreadStatePopFn->removeAttr(FnAttr::AlwaysInline);
    trace(TraceSlot::ThreadStatePop);
    Value *Slot = threadStateSlot();
    Value *TS = B.load(Type::ptr(), Slot);
    Value *Prev = B.load(Type::ptr(), B.gep(TS, ThreadStateLayout::Previous));
    B.store(Prev, Slot);
    B.call(M->findFunction(FreeSharedName),
           {TS, B.i64(ThreadStateLayout::Size)});
    B.retVoid();
  }

  /// omp_set_num_threads(n): the ICV-write path. Cheap while the team state
  /// is shared by everyone; forces an individual thread state inside a
  /// parallel region (the costly case the paper discourages).
  void emitSetNumThreads() {
    Function *F = makeFn(SetNumThreadsName, Type::voidTy(), {Type::i32()});
    Value *Slot = threadStateSlot();
    Value *TS = B.load(Type::ptr(), Slot);
    Value *Has = B.icmpNE(B.ptrToInt(TS), B.i64(0));
    BasicBlock *HasBB = F->createBlock("snt.has");
    BasicBlock *CheckLv = F->createBlock("snt.checklv");
    BasicBlock *TeamWide = F->createBlock("snt.teamwide");
    BasicBlock *NeedState = F->createBlock("snt.needstate");
    B.condBr(Has, HasBB, CheckLv);

    B.setInsertPoint(HasBB);
    B.store(F->arg(0), B.gep(TS, ThreadStateLayout::NThreadsVar));
    B.retVoid();

    B.setInsertPoint(CheckLv);
    Value *Lv = B.load(Type::i32(), teamField(TeamStateLayout::LevelsVar));
    B.condBr(B.icmpEQ(Lv, B.i32(0)), TeamWide, NeedState);

    // Serial region: only the main thread executes, so a team-wide update
    // is valid for all threads.
    B.setInsertPoint(TeamWide);
    B.store(F->arg(0), teamField(TeamStateLayout::NThreadsVar));
    B.retVoid();

    // Inside a parallel region: the modification is thread-private.
    B.setInsertPoint(NeedState);
    B.call(ThreadStatePushFn, {});
    Value *NewTS = B.load(Type::ptr(), Slot);
    B.store(F->arg(0), B.gep(NewTS, ThreadStateLayout::NThreadsVar));
    B.retVoid();
  }

  /// __kmpc_target_init(mode): Section III-A/III-B/III-C initialization.
  /// Executed by every thread; the mode is passed by value so no memory
  /// read happens before the first barrier.
  void emitTargetInit() {
    Function *F = makeFn(TargetInitName, Type::voidTy(), {Type::i32()});
    trace(TraceSlot::TargetInit);
    Value *Mode = F->arg(0);
    Value *Tid = B.threadId();
    Value *IsSpmd = B.icmpEQ(Mode, B.i32(ModeSPMD));
    Value *Dim = B.blockDim();
    Value *MainTid = B.select(IsSpmd, B.i32(0), B.sub(Dim, B.i32(1)));
    Value *IsMain = B.icmpEQ(Tid, MainTid);

    // SPMD-mode flag (III-A): set once by the main thread, never changed.
    condWrite(SpmdFlag, Mode, IsMain);

    // Team ICV state (III-B), initialized via conditional writes.
    condWrite(teamField(TeamStateLayout::NThreadsVar), Dim, IsMain);
    condWrite(teamField(TeamStateLayout::LevelsVar), B.i32(0), IsMain);
    condWrite(teamField(TeamStateLayout::ActiveLevelsVar), B.i32(0), IsMain);
    condWrite(teamField(TeamStateLayout::RunSchedVar), B.i32(0), IsMain);
    condWrite(teamField(TeamStateLayout::WorkFn), B.nullPtr(), IsMain);
    condWrite(teamField(TeamStateLayout::WorkArgs), B.nullPtr(), IsMain);
    // Default parallel team size: all threads in SPMD, all but the main
    // thread in generic mode.
    Value *DefaultSize = B.select(IsSpmd, Dim, B.sub(Dim, B.i32(1)));
    condWrite(teamField(TeamStateLayout::ParallelTeamSize), DefaultSize,
              IsMain);

    // Shared-stack bookkeeping (III-D).
    condWrite(StackTop, B.i64(0), IsMain);

    // Thread states (III-C): every thread marks "no individual state".
    B.store(B.nullPtr(), threadStateSlot());

    // Broadcast to the team.
    B.alignedBarrier(0);

    // Figure 8b: after the broadcast barrier the content is known; give the
    // optimizer unconditional facts (verified at runtime in debug builds).
    if (Options.EmitBroadcastAssumes) {
      Value *FlagNow = B.load(Type::i32(), SpmdFlag);
      B.assume(B.icmpEQ(FlagNow, Mode));
      Value *LvNow =
          B.load(Type::i32(), teamField(TeamStateLayout::LevelsVar));
      B.assume(B.icmpEQ(LvNow, B.i32(0)));
      Value *SizeNow =
          B.load(Type::i32(), teamField(TeamStateLayout::ParallelTeamSize));
      B.assume(B.icmpEQ(SizeNow, DefaultSize));
    }
    B.retVoid();
  }

  /// __kmpc_target_deinit(mode): terminate the state machine in generic
  /// mode (publish a NULL work function); plain final barrier in SPMD mode.
  void emitTargetDeinit() {
    Function *F = makeFn(TargetDeinitName, Type::voidTy(), {Type::i32()});
    trace(TraceSlot::TargetDeinit);
    Value *IsSpmd = B.icmpEQ(F->arg(0), B.i32(ModeSPMD));
    BasicBlock *SpmdBB = F->createBlock("deinit.spmd");
    BasicBlock *GenericBB = F->createBlock("deinit.generic");
    B.condBr(IsSpmd, SpmdBB, GenericBB);
    B.setInsertPoint(SpmdBB);
    B.alignedBarrier(0);
    B.retVoid();
    // Generic mode: only the main thread reaches deinit.
    B.setInsertPoint(GenericBB);
    B.store(B.nullPtr(), teamField(TeamStateLayout::WorkFn));
    B.barrier(1); // release the workers so they observe NULL and exit
    B.retVoid();
  }

  /// Worker-side state-machine helpers (the frontend emits the machine
  /// inline in the kernel so SPMDization can delete it; these keep the
  /// synchronization idioms in one place).
  void emitWorkFnHelpers() {
    {
      makeFn(WorkFnWaitName, Type::ptr(), {});
      B.barrier(1); // wait for work
      B.ret(B.load(Type::ptr(), teamField(TeamStateLayout::WorkFn)));
    }
    {
      makeFn(WorkFnArgsName, Type::ptr(), {});
      B.ret(B.load(Type::ptr(), teamField(TeamStateLayout::WorkArgs)));
    }
    {
      makeFn(WorkFnDoneName, Type::voidTy(), {});
      B.barrier(2); // join
      B.retVoid();
    }
  }

  /// SPMD-mode parallel bracket: every thread executes the region directly;
  /// only the levels-var ICV needs maintaining, via a broadcast write plus
  /// the Figure 8b assumption. With the state eliminated these barriers
  /// become redundant and the aligned-barrier elimination pass (Section
  /// IV-D) removes them.
  void emitSpmdParallelBeginEnd() {
    {
      makeFn(SpmdParallelBeginName, Type::voidTy(), {});
      // Figure 8b places a barrier between the last reads of the previous
      // state and the next update: without it the leader's write races with
      // lagging threads still reading the post-init state.
      B.alignedBarrier(0);
      Value *IsMain = B.icmpEQ(B.threadId(), B.i32(0));
      condWrite(teamField(TeamStateLayout::LevelsVar), B.i32(1), IsMain);
      condWrite(teamField(TeamStateLayout::ActiveLevelsVar), B.i32(1), IsMain);
      B.alignedBarrier(0);
      if (Options.EmitBroadcastAssumes) {
        Value *Lv = B.load(Type::i32(), teamField(TeamStateLayout::LevelsVar));
        B.assume(B.icmpEQ(Lv, B.i32(1)));
      }
      B.retVoid();
    }
    {
      makeFn(SpmdParallelEndName, Type::voidTy(), {});
      B.alignedBarrier(0); // region-end join
      Value *IsMain = B.icmpEQ(B.threadId(), B.i32(0));
      condWrite(teamField(TeamStateLayout::LevelsVar), B.i32(0), IsMain);
      condWrite(teamField(TeamStateLayout::ActiveLevelsVar), B.i32(0), IsMain);
      B.alignedBarrier(0);
      if (Options.EmitBroadcastAssumes) {
        Value *Lv = B.load(Type::i32(), teamField(TeamStateLayout::LevelsVar));
        B.assume(B.icmpEQ(Lv, B.i32(0)));
      }
      B.retVoid();
    }
  }

  /// __kmpc_broadcast_ptr(v, c): publish a pointer from the thread where C
  /// holds to the whole team (conditional write + aligned barrier + load).
  void emitBroadcastPtr() {
    Function *F =
        makeFn(BroadcastPtrName, Type::ptr(), {Type::ptr(), Type::i1()});
    condWrite(BcastSlot, F->arg(0), F->arg(1));
    B.alignedBarrier(0);
    Value *V = B.load(Type::ptr(), BcastSlot);
    B.alignedBarrier(0); // keep the slot stable until everyone has read it
    B.ret(V);
  }

  /// __kmpc_parallel(fn, args, nthreads): generic-mode parallel region,
  /// called by the team's main thread. Nested parallels serialize with an
  /// on-demand thread ICV state (Figure 4).
  void emitParallel() {
    Function *F = makeFn(ParallelName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::i32()});
    trace(TraceSlot::Parallel);
    Value *Lv = B.call(GetLevelFn, {});
    Value *Nested = B.cmp(CmpPred::SGT, Lv, B.i32(0));
    BasicBlock *NestedBB = F->createBlock("par.nested");
    BasicBlock *TopBB = F->createBlock("par.top");
    B.condBr(Nested, NestedBB, TopBB);

    // Nested parallel: serialized, one thread, individual ICV state. The
    // paper strongly discourages this — it forces runtime allocation and
    // defeats state elimination (Section III-E).
    B.setInsertPoint(NestedBB);
    B.call(ThreadStatePushFn, {});
    Value *TS = B.load(Type::ptr(), threadStateSlot());
    B.store(B.add(Lv, B.i32(1)), B.gep(TS, ThreadStateLayout::LevelsVar));
    B.callIndirect(Type::voidTy(), F->arg(0), {F->arg(1)});
    B.call(ThreadStatePopFn, {});
    B.retVoid();

    // Top-level parallel: publish state, run the fork-join choreography.
    B.setInsertPoint(TopBB);
    Value *Tid = B.threadId();
    Value *Dim = B.blockDim();
    Value *IsMain = B.icmpEQ(Tid, B.sub(Dim, B.i32(1)));
    Value *NWorkers = B.sub(Dim, B.i32(1));
    Value *HasClause = B.cmp(CmpPred::SGT, F->arg(2), B.i32(0));
    Value *Clamped = B.select(B.cmp(CmpPred::SLT, F->arg(2), NWorkers),
                              F->arg(2), NWorkers);
    Value *Size = B.select(HasClause, Clamped, NWorkers);
    condWrite(teamField(TeamStateLayout::ParallelTeamSize), Size, IsMain);
    condWrite(teamField(TeamStateLayout::LevelsVar), B.i32(1), IsMain);
    condWrite(teamField(TeamStateLayout::ActiveLevelsVar), B.i32(1), IsMain);
    condWrite(teamField(TeamStateLayout::WorkArgs), F->arg(1), IsMain);
    condWrite(teamField(TeamStateLayout::WorkFn), F->arg(0), IsMain);
    B.barrier(1); // release workers
    B.barrier(2); // join
    condWrite(teamField(TeamStateLayout::LevelsVar), B.i32(0), IsMain);
    condWrite(teamField(TeamStateLayout::ActiveLevelsVar), B.i32(0), IsMain);
    B.retVoid();
  }

  /// The Figure 5 noChunkImpl, combined distribute+for scheme:
  /// each hardware thread covers iterations IV, IV+Total, ... where
  /// IV = Bid*NumThreads+Tid and Total = NumBlocks*NumThreads. The
  /// teams-oversubscription assumption breaks the loop after one
  /// iteration ("-fopenmp-assume-teams-oversubscription").
  void emitDistributeForStaticLoop() {
    Function *F = makeFn(DistributeForStaticLoopName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::i64()});
    trace(TraceSlot::DistributeForStaticLoop);
    Value *NumIters = F->arg(2);
    Value *NB = B.zext(B.gridDim(), Type::i64());
    Value *NT = B.zext(B.blockDim(), Type::i64());
    Value *Bid = B.zext(B.blockId(), Type::i64());
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Total = B.mul(NB, NT);
    Value *IV0 = B.add(B.mul(Bid, NT), Tid);
    Value *Oversub = B.load(
        Type::i32(), M->findGlobal(AssumeTeamsOversubName));
    Value *Assumed = B.icmpNE(Oversub, B.i32(0));
    if (Options.EmitOversubscriptionAsserts) {
      // "break the loops after asserting that the condition actually holds
      // at runtime" (Section III-F).
      Value *Holds = B.or_(B.icmpEQ(Oversub, B.i32(0)),
                           B.cmp(CmpPred::SLE, NumIters, Total));
      assertOrAssume(F, Holds,
                     "teams-oversubscription assumption violated: more "
                     "iterations than threads in the league");
    }
    emitNoChunkLoop(F, F->arg(0), F->arg(1), NumIters, IV0, Total, Assumed);
  }

  /// Within-team work-sharing loop (`for`), same scheme over the parallel
  /// team: IV = Tid, stride = team size; threads-oversubscription breaks
  /// the loop ("-fopenmp-assume-threads-oversubscription").
  void emitForStaticLoop() {
    Function *F = makeFn(ForStaticLoopName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::i64()});
    trace(TraceSlot::ForStaticLoop);
    Value *NumIters = F->arg(2);
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Size = B.zext(
        B.load(Type::i32(), teamField(TeamStateLayout::ParallelTeamSize)),
        Type::i64());
    Value *Oversub = B.load(
        Type::i32(), M->findGlobal(AssumeThreadsOversubName));
    Value *Assumed = B.icmpNE(Oversub, B.i32(0));
    if (Options.EmitOversubscriptionAsserts) {
      Value *Holds = B.or_(B.icmpEQ(Oversub, B.i32(0)),
                           B.cmp(CmpPred::SLE, NumIters, Size));
      assertOrAssume(F, Holds,
                     "threads-oversubscription assumption violated: more "
                     "iterations than threads in the team");
    }
    emitNoChunkLoop(F, F->arg(0), F->arg(1), NumIters, Tid, Size, Assumed);
  }

  /// Generic-mode variant of the combined loop: only the blockDim-1 worker
  /// threads of each team participate (the main thread runs the state
  /// machine). SPMDization rewrites calls to this into the static variant.
  void emitDistributeForGenericLoop() {
    Function *F = makeFn(DistributeForGenericLoopName, Type::voidTy(),
                         {Type::ptr(), Type::ptr(), Type::i64()});
    Value *NumIters = F->arg(2);
    Value *NB = B.zext(B.gridDim(), Type::i64());
    Value *NW =
        B.sub(B.zext(B.blockDim(), Type::i64()), B.i64(1)); // workers/team
    Value *Bid = B.zext(B.blockId(), Type::i64());
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Total = B.mul(NB, NW);
    Value *IV0 = B.add(B.mul(Bid, NW), Tid);
    Value *Oversub =
        B.load(Type::i32(), M->findGlobal(AssumeTeamsOversubName));
    Value *Assumed = B.icmpNE(Oversub, B.i32(0));
    emitNoChunkLoop(F, F->arg(0), F->arg(1), NumIters, IV0, Total, Assumed);
  }

  /// Core of Figure 5: if (IV < N) do { body(IV); IV += Total;
  /// if (Assumed) break; } while (IV < N);
  void emitNoChunkLoop(Function *F, Value *BodyFn, Value *Args,
                       Value *NumIters, Value *IV0, Value *Stride,
                       Value *Assumed) {
    BasicBlock *Preheader = B.insertBlock();
    BasicBlock *LoopBB = F->createBlock("ws.loop");
    BasicBlock *LatchBB = F->createBlock("ws.latch");
    BasicBlock *ExitBB = F->createBlock("ws.exit");
    Value *Enter = B.cmp(CmpPred::SLT, IV0, NumIters);
    B.condBr(Enter, LoopBB, ExitBB);

    B.setInsertPoint(LoopBB);
    Instruction *IV = B.phi(Type::i64());
    B.callIndirect(Type::voidTy(), BodyFn, {IV, Args});
    Value *Next = B.add(IV, Stride);
    // User assumption to avoid the loop (Figure 5's early break).
    B.condBr(Assumed, ExitBB, LatchBB);

    B.setInsertPoint(LatchBB);
    Value *Again = B.cmp(CmpPred::SLT, Next, NumIters);
    B.condBr(Again, LoopBB, ExitBB);

    IV->addIncoming(IV0, Preheader);
    IV->addIncoming(Next, LatchBB);

    B.setInsertPoint(ExitBB);
    B.retVoid();
  }

  const RTLOptions &Options;
  std::unique_ptr<Module> M;
  IRBuilder B;

  GlobalVariable *SpmdFlag = nullptr;
  GlobalVariable *TeamState = nullptr;
  GlobalVariable *ThreadStates = nullptr;
  GlobalVariable *SharedStack = nullptr;
  GlobalVariable *StackTop = nullptr;
  GlobalVariable *Dummy = nullptr;
  GlobalVariable *BcastSlot = nullptr;
  Function *TraceFn = nullptr;
  Function *GetLevelFn = nullptr;
  Function *ThreadStatePushFn = nullptr;
  Function *ThreadStatePopFn = nullptr;
};

} // namespace

std::unique_ptr<Module> buildDeviceRTL(const RTLOptions &Options) {
  return DeviceRTLBuilder(Options).run();
}

} // namespace codesign::rt
