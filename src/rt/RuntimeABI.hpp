//===- rt/RuntimeABI.hpp - Names and layouts shared across the stack ------===//
//
// Central definition of the device-runtime ABI: global-variable names, the
// team ICV state layout (paper Section III-B), thread-state layout (III-C),
// shared-stack shape (III-D), runtime entry-point names, and the
// configuration globals through which the frontend communicates compile-time
// flags to the runtime ("emit constant globals that the runtime will 'read'
// at compile time", Section III-F).
//
// Everything here is consumed by: the new-runtime generator (rt), the
// legacy-runtime generator (oldrt), the frontend lowering, the optimizer
// (which recognizes a handful of entries by name), and the tests.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string_view>

namespace codesign::rt {

/// Execution mode constants passed to __kmpc_target_init (matches
/// ir::ExecMode semantics: 0 generic, 1 SPMD).
inline constexpr std::int32_t ModeGeneric = 0;
inline constexpr std::int32_t ModeSPMD = 1;

/// Maximum threads per team the runtime supports (sizes the thread-states
/// pointer array). Like the real device RTL, the array is provisioned for
/// the hardware maximum whether or not a launch uses it — state the
/// optimizer must eliminate for full occupancy.
inline constexpr std::uint32_t MaxThreadsPerTeam = 512;

/// Shared-memory stack size (paper Section III-D). Global `malloc` is the
/// overflow fallback.
inline constexpr std::uint64_t SharedStackBytes = 8192;

//===----------------------------------------------------------------------===//
// Team ICV state (one instance per team, static shared memory)
//===----------------------------------------------------------------------===//

/// Byte offsets of fields inside @__omp_team_state. The optimizer's
/// field-sensitive access analysis (Section IV-B1) bins accesses by exactly
/// these (offset, size) pairs.
struct TeamStateLayout {
  static constexpr std::int64_t NThreadsVar = 0;       ///< i32 nthreads-var ICV
  static constexpr std::int64_t LevelsVar = 4;         ///< i32 levels-var ICV
  static constexpr std::int64_t ActiveLevelsVar = 8;   ///< i32
  static constexpr std::int64_t RunSchedVar = 12;      ///< i32
  static constexpr std::int64_t WorkFn = 16;           ///< ptr: state machine work fn
  static constexpr std::int64_t WorkArgs = 24;         ///< ptr: its argument block
  static constexpr std::int64_t ParallelTeamSize = 32; ///< i32
  static constexpr std::int64_t Size = 40;
};

/// Byte offsets inside an on-demand thread ICV state (allocated from the
/// shared stack when a thread's state diverges from the team's; Section
/// III-C).
struct ThreadStateLayout {
  static constexpr std::int64_t NThreadsVar = 0;     ///< i32
  static constexpr std::int64_t LevelsVar = 4;       ///< i32
  static constexpr std::int64_t ActiveLevelsVar = 8; ///< i32
  static constexpr std::int64_t Pad = 12;            ///< i32
  static constexpr std::int64_t Previous = 16;       ///< ptr: enclosing state
  static constexpr std::int64_t Size = 24;
};

//===----------------------------------------------------------------------===//
// Global (module-level) symbol names
//===----------------------------------------------------------------------===//

// Shared-space runtime state.
inline constexpr std::string_view SpmdFlagName = "__omp_spmd_mode";
inline constexpr std::string_view TeamStateName = "__omp_team_state";
inline constexpr std::string_view ThreadStatesName = "__omp_thread_states";
inline constexpr std::string_view SharedStackName = "__omp_shared_stack";
inline constexpr std::string_view StackTopName = "__omp_stack_top";
inline constexpr std::string_view DummyName = "__omp_cond_write_dummy";

// Compile-time configuration (Constant space, value chosen by the frontend
// from command-line-style flags; paper Sections III-F and III-G).
inline constexpr std::string_view DebugKindName = "__omp_rtl_debug_kind";
inline constexpr std::string_view AssumeTeamsOversubName =
    "__omp_rtl_assume_teams_oversubscription";
inline constexpr std::string_view AssumeThreadsOversubName =
    "__omp_rtl_assume_threads_oversubscription";

// Debug-kind bits.
inline constexpr std::int32_t DebugAssertions = 1;
inline constexpr std::int32_t DebugFunctionTracing = 2;

// Host-readable trace counters (Global space): one u64 slot per traced
// runtime entry point; populated only when function tracing is enabled.
inline constexpr std::string_view TraceCountsName = "__omp_trace_counts";

/// Slots in @__omp_trace_counts.
enum class TraceSlot : std::int64_t {
  TargetInit = 0,
  TargetDeinit,
  Parallel,
  DistributeForStaticLoop,
  ForStaticLoop,
  AllocShared,
  FreeShared,
  ThreadStatePush,
  ThreadStatePop,
  NumSlots,
};

//===----------------------------------------------------------------------===//
// Runtime entry-point names (new runtime)
//===----------------------------------------------------------------------===//

inline constexpr std::string_view TargetInitName = "__kmpc_target_init";
inline constexpr std::string_view TargetDeinitName = "__kmpc_target_deinit";
inline constexpr std::string_view ParallelName = "__kmpc_parallel";
inline constexpr std::string_view WorkFnWaitName = "__kmpc_workfn_wait";
inline constexpr std::string_view WorkFnArgsName = "__kmpc_workfn_args";
inline constexpr std::string_view WorkFnDoneName = "__kmpc_workfn_done";
inline constexpr std::string_view DistributeForStaticLoopName =
    "__kmpc_distribute_for_static_loop";
inline constexpr std::string_view ForStaticLoopName = "__kmpc_for_static_loop";
inline constexpr std::string_view DistributeForGenericLoopName =
    "__kmpc_distribute_for_generic_loop";
inline constexpr std::string_view AllocSharedName = "__kmpc_alloc_shared";
inline constexpr std::string_view FreeSharedName = "__kmpc_free_shared";
inline constexpr std::string_view GetThreadNumName = "omp_get_thread_num";
inline constexpr std::string_view GetNumThreadsName = "omp_get_num_threads";
inline constexpr std::string_view GetTeamNumName = "omp_get_team_num";
inline constexpr std::string_view GetNumTeamsName = "omp_get_num_teams";
inline constexpr std::string_view GetLevelName = "omp_get_level";
inline constexpr std::string_view InParallelName = "omp_in_parallel";
inline constexpr std::string_view SetNumThreadsName = "omp_set_num_threads";
inline constexpr std::string_view SpmdParallelBeginName =
    "__kmpc_spmd_parallel_begin";
inline constexpr std::string_view SpmdParallelEndName =
    "__kmpc_spmd_parallel_end";
inline constexpr std::string_view BroadcastPtrName = "__kmpc_broadcast_ptr";
inline constexpr std::string_view BroadcastSlotName = "__omp_bcast_slot";

//===----------------------------------------------------------------------===//
// Legacy runtime (oldrt) symbols — deliberately a different, opaque ABI
//===----------------------------------------------------------------------===//

inline constexpr std::string_view OldInitName = "__old_kmpc_kernel_init";
inline constexpr std::string_view OldDeinitName = "__old_kmpc_kernel_deinit";
inline constexpr std::string_view OldParallelName = "__old_kmpc_kernel_parallel";
inline constexpr std::string_view OldEndParallelName =
    "__old_kmpc_kernel_end_parallel";
inline constexpr std::string_view OldForStaticInitName =
    "__old_kmpc_for_static_init";
inline constexpr std::string_view OldForStaticFiniName =
    "__old_kmpc_for_static_fini";
inline constexpr std::string_view OldDistributeInitName =
    "__old_kmpc_distribute_static_init";
inline constexpr std::string_view OldGetThreadNumName =
    "__old_omp_get_thread_num";
inline constexpr std::string_view OldGetNumThreadsName =
    "__old_omp_get_num_threads";
inline constexpr std::string_view OldDataSharingSlabName =
    "__old_omp_data_sharing_slab";
inline constexpr std::string_view OldTeamContextName = "__old_omp_team_context";

/// Size of the legacy data-sharing slab: the paper's Figure 11 reports a
/// constant 2336 B of static shared memory for every Old-RT build.
inline constexpr std::uint64_t OldSlabBytes = 2176;
inline constexpr std::uint64_t OldTeamContextBytes = 160;

} // namespace codesign::rt
