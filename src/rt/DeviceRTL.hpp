//===- rt/DeviceRTL.hpp - The new OpenMP GPU device runtime ----------------===//
//
// Generates the co-designed device runtime of the paper's Section III as an
// IR module — the analogue of the LLVM device RTL being shipped as bitcode
// and linked into the application before optimization (Section II-B). Every
// entry point is AlwaysInline and Internal so the optimizer can see through
// it; the runtime state lives in static shared memory exactly as described:
//
//   * @__omp_spmd_mode       — the SPMD-mode flag (III-A)
//   * @__omp_team_state      — the team ICV state (III-B)
//   * @__omp_thread_states   — per-thread state pointers, NULL => team (III-C)
//   * @__omp_shared_stack    — the shared-memory stack w/ malloc fallback (III-D)
//
// Work-sharing is the combined CUDA-style scheme of Figure 5, including the
// oversubscription-assumption break. Conditional writes use the
// dummy-pointer idiom of Figure 7b, and broadcast barriers are followed by
// the assumptions of Figure 8b. Debugging/assertion support follows III-G:
// the runtime reads @__omp_rtl_debug_kind (a constant the frontend emits)
// and all debug code folds away statically in release builds.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <memory>

#include "ir/Module.hpp"

namespace codesign::rt {

/// Build-time options for the runtime library.
struct RTLOptions {
  /// Emit the post-broadcast-barrier assumptions of Figure 8b. On by
  /// default; the ablation benches can disable the *pass* that consumes
  /// them instead, but this switch allows runtime-side experiments too.
  bool EmitBroadcastAssumes = true;
  /// Emit debug assertions verifying the oversubscription assumptions at
  /// runtime (paper: "after asserting that the condition actually holds").
  bool EmitOversubscriptionAsserts = true;
};

/// Generate the new device runtime as a standalone module, ready to be
/// linked into an application module with ir::linkModules.
std::unique_ptr<ir::Module> buildDeviceRTL(const RTLOptions &Options = {});

} // namespace codesign::rt
