#include "frontend/Codegen.hpp"

#include "ir/IRBuilder.hpp"
#include "rt/RuntimeABI.hpp"

namespace codesign::frontend {

using namespace ir;
namespace abi = codesign::rt;

bool isSpmdCompatible(const KernelSpec &Spec) {
  if (Spec.Stmts.empty())
    return false;
  for (const Stmt &S : Spec.Stmts)
    if (S.K != StmtKind::DistributeParallelFor)
      return false;
  return true;
}

namespace {

/// Stateful lowering of one KernelSpec.
class KernelEmitter {
public:
  KernelEmitter(const KernelSpec &Spec, const CodegenOptions &Opts)
      : Spec(Spec), Opts(Opts),
        M(std::make_unique<Module>(Spec.Name + ".module")), B(*M) {}

  Expected<CodegenResult> run() {
    if (auto Err = validate())
      return *Err;
    if (Opts.RT != RuntimeKind::Native) {
      emitConfigGlobals();
      declareRuntime();
    }
    createKernel();
    switch (Opts.RT) {
    case RuntimeKind::Native:
      emitNative();
      break;
    case RuntimeKind::NewRT:
      if (isSpmdCompatible(Spec) && !Opts.ForceGenericMode)
        emitNewSpmd();
      else
        emitNewGeneric();
      break;
    case RuntimeKind::OldRT:
      emitOldGeneric();
      break;
    }
    CodegenResult R;
    R.Kernel = K;
    R.AppModule = std::move(M);
    return R;
  }

private:
  //===--------------------------------------------------------------------===//
  // Validation
  //===--------------------------------------------------------------------===//

  std::optional<Error> validate() {
    for (const Stmt &S : Spec.Stmts) {
      if (S.K == StmtKind::For)
        return makeError("kernel '", Spec.Name,
                         "': 'for' must be nested inside 'parallel'");
      if (S.K == StmtKind::Parallel)
        if (auto E = validateParallel(S, /*Depth=*/1))
          return E;
    }
    if (Spec.Stmts.empty())
      return makeError("kernel '", Spec.Name, "': empty target region");
    return std::nullopt;
  }

  std::optional<Error> validateParallel(const Stmt &P, int Depth) {
    for (const Stmt &S : P.Children) {
      switch (S.K) {
      case StmtKind::Serial:
        return makeError("kernel '", Spec.Name,
                         "': serial statements inside 'parallel' are not "
                         "supported (use master/single semantics outside)");
      case StmtKind::DistributeParallelFor:
        return makeError("kernel '", Spec.Name,
                         "': combined distribute inside 'parallel'");
      case StmtKind::For:
        if (Depth > 1)
          return makeError("kernel '", Spec.Name,
                           "': worksharing inside a nested parallel");
        break;
      case StmtKind::Parallel:
        if (S.HasDirectBody)
          break; // direct-body parallels are fine at any depth
        if (Depth >= 2)
          return makeError("kernel '", Spec.Name,
                           "': parallel nesting deeper than two levels");
        if (auto E = validateParallel(S, Depth + 1))
          return E;
        break;
      case StmtKind::SetNumThreads:
        break;
      }
    }
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Module furniture
  //===--------------------------------------------------------------------===//

  /// The compile-time configuration globals (Figure 1: "command line
  /// options will impact the features ... that make it into the final
  /// binary"). The runtime reads these; constant folding burns them in.
  void emitConfigGlobals() {
    auto makeCfg = [&](std::string_view Name, std::int32_t V) {
      GlobalVariable *G =
          M->createGlobal(std::string(Name), AddrSpace::Constant, 4);
      G->setConstantFlag(true);
      G->setScalarInit(static_cast<std::uint32_t>(V), 4);
    };
    makeCfg(abi::DebugKindName, Opts.DebugKind);
    makeCfg(abi::AssumeTeamsOversubName,
            Opts.AssumeTeamsOversubscription ? 1 : 0);
    makeCfg(abi::AssumeThreadsOversubName,
            Opts.AssumeThreadsOversubscription ? 1 : 0);
  }

  Function *declare(std::string_view Name, Type Ret, std::vector<Type> Params) {
    if (Function *F = M->findFunction(Name))
      return F;
    return M->createFunction(std::string(Name), Ret, std::move(Params));
  }

  void declareRuntime() {
    const Type V = Type::voidTy(), P = Type::ptr(), I32 = Type::i32(),
               I64 = Type::i64();
    if (Opts.RT == RuntimeKind::NewRT) {
      declare(abi::TargetInitName, V, {I32});
      declare(abi::TargetDeinitName, V, {I32});
      declare(abi::ParallelName, V, {P, P, I32});
      declare(abi::WorkFnWaitName, P, {});
      declare(abi::WorkFnArgsName, P, {});
      declare(abi::WorkFnDoneName, V, {});
      declare(abi::DistributeForStaticLoopName, V, {P, P, I64});
      declare(abi::DistributeForGenericLoopName, V, {P, P, I64});
      declare(abi::ForStaticLoopName, V, {P, P, I64});
      declare(abi::AllocSharedName, P, {I64});
      declare(abi::FreeSharedName, V, {P, I64});
      declare(abi::SpmdParallelBeginName, V, {});
      declare(abi::SpmdParallelEndName, V, {});
      declare(abi::BroadcastPtrName, P, {P, Type::i1()});
      declare(abi::GetThreadNumName, I32, {});
      declare(abi::GetNumThreadsName, I32, {});
      declare(abi::GetTeamNumName, I32, {});
      declare(abi::GetNumTeamsName, I32, {});
      declare(abi::GetLevelName, I32, {});
      declare(abi::InParallelName, I32, {});
      declare(abi::SetNumThreadsName, V, {I32});
    } else {
      declare(abi::OldInitName, V, {I32});
      declare(abi::OldDeinitName, V, {});
      declare(abi::OldParallelName, V, {P, P, I32});
      declare(abi::OldEndParallelName, V, {});
      declare("__old_kmpc_workfn_wait", P, {});
      declare("__old_kmpc_workfn_args", P, {});
      declare("__old_kmpc_workfn_done", V, {});
      declare(abi::OldForStaticInitName, V, {P, P, P, I64});
      declare(abi::OldForStaticFiniName, V, {});
      declare(abi::OldDistributeInitName, V, {P, P, P, I64});
      declare(abi::OldGetThreadNumName, I32, {});
      declare(abi::OldGetNumThreadsName, I32, {});
      declare("__old_kmpc_data_sharing_push", P, {I64});
      declare("__old_kmpc_data_sharing_pop", V, {P, I64});
    }
  }

  void createKernel() {
    std::vector<Type> ParamTys;
    ParamTys.reserve(Spec.Params.size());
    for (const ParamSpec &PS : Spec.Params)
      ParamTys.push_back(PS.Ty);
    K = M->createFunction(Spec.Name, Type::voidTy(), std::move(ParamTys));
    K->addAttr(FnAttr::Kernel);
    for (unsigned I = 0; I < Spec.Params.size(); ++I) {
      K->arg(I)->setName(Spec.Params[I].Name);
      if (Spec.Params[I].Map != ir::MapKind::None)
        K->setArgMap(I, Spec.Params[I].Map);
    }
    B.setInsertPoint(K->createBlock("entry"));
  }

  //===--------------------------------------------------------------------===//
  // Shared emission helpers
  //===--------------------------------------------------------------------===//

  Value *rtCall(std::string_view Name, std::initializer_list<Value *> Args) {
    Function *F = M->findFunction(Name);
    CODESIGN_ASSERT(F, "runtime function not declared");
    return B.call(F, std::span<Value *const>(Args.begin(), Args.size()));
  }

  /// Slots in the argument block: one per kernel parameter, plus a final
  /// slot for the scratch pointer.
  [[nodiscard]] std::uint64_t argBlockBytes() const {
    return 8 * (Spec.Params.size() + 1);
  }
  [[nodiscard]] std::int64_t scratchSlotOffset() const {
    return static_cast<std::int64_t>(8 * Spec.Params.size());
  }

  /// Store every kernel parameter into the argument block.
  void packArgs(Value *ArgsPtr) {
    for (unsigned I = 0; I < Spec.Params.size(); ++I)
      B.store(K->arg(I), B.gep(ArgsPtr, static_cast<std::int64_t>(8 * I)));
  }

  /// Source of values for BodyArg / TripCount, differing between the kernel
  /// scope (direct parameters) and outlined scope (argument block loads).
  struct ValueScope {
    /// Value of kernel parameter I.
    std::function<Value *(unsigned)> Param;
    /// Scratch pointer, or null when no scratch exists in this scope.
    Value *Scratch = nullptr;
    /// The iteration variable, or null outside loop bodies.
    Value *Iter = nullptr;
  };

  ValueScope kernelScope() {
    ValueScope S;
    S.Param = [this](unsigned I) -> Value * { return K->arg(I); };
    return S;
  }

  ValueScope outlinedScope(Function *F, Value *ArgsPtr) {
    ValueScope S;
    S.Param = [this, ArgsPtr, F](unsigned I) -> Value * {
      (void)F;
      return B.load(Spec.Params[I].Ty,
                    B.gep(ArgsPtr, static_cast<std::int64_t>(8 * I)));
    };
    S.Scratch = nullptr; // set by callers that pass scratch
    return S;
  }

  Value *emitTripCount(const TripCount &T, const ValueScope &S) {
    switch (T.K) {
    case TripCount::Kind::Constant:
      return B.i64(T.Const);
    case TripCount::Kind::Argument: {
      Value *V = S.Param(T.ArgIndex);
      CODESIGN_ASSERT(V->type() == Type::i64(),
                      "trip-count argument must be i64");
      return V;
    }
    case TripCount::Kind::LoadFromArgPtr: {
      Value *Ptr = S.Param(T.ArgIndex);
      return B.load(Type::i64(), B.gep(Ptr, T.Offset));
    }
    }
    CODESIGN_UNREACHABLE("bad trip count kind");
  }

  Value *emitBodyArg(const BodyArg &A, const ValueScope &S) {
    switch (A.K) {
    case BodyArg::Kind::IterVar:
      CODESIGN_ASSERT(S.Iter, "IterVar outside a loop body");
      return S.Iter;
    case BodyArg::Kind::KernelArg:
      return S.Param(A.ArgIndex);
    case BodyArg::Kind::Constant:
      return B.i64(A.Const);
    case BodyArg::Kind::Scratch:
      CODESIGN_ASSERT(S.Scratch, "Scratch arg without scratch allocation");
      return S.Scratch;
    case BodyArg::Kind::ThreadNum:
      switch (Opts.RT) {
      case RuntimeKind::Native:
        return B.threadId();
      case RuntimeKind::NewRT:
        return rtCall(abi::GetThreadNumName, {});
      case RuntimeKind::OldRT:
        return rtCall(abi::OldGetThreadNumName, {});
      }
      break;
    case BodyArg::Kind::NumThreads:
      switch (Opts.RT) {
      case RuntimeKind::Native:
        return B.blockDim();
      case RuntimeKind::NewRT:
        return rtCall(abi::GetNumThreadsName, {});
      case RuntimeKind::OldRT:
        return rtCall(abi::OldGetNumThreadsName, {});
      }
      break;
    case BodyArg::Kind::TeamNum:
      if (Opts.RT == RuntimeKind::NewRT)
        return rtCall(abi::GetTeamNumName, {});
      return B.blockId();
    case BodyArg::Kind::NumTeams:
      if (Opts.RT == RuntimeKind::NewRT)
        return rtCall(abi::GetNumTeamsName, {});
      return B.gridDim();
    }
    CODESIGN_UNREACHABLE("bad body arg kind");
  }

  void emitNativeBody(const NativeBody &NB, const ValueScope &S) {
    std::vector<Value *> Args;
    Args.reserve(NB.Args.size());
    for (const BodyArg &A : NB.Args)
      Args.push_back(emitBodyArg(A, S));
    B.nativeOp(NB.NativeId, Type::voidTy(),
               std::span<Value *const>(Args.data(), Args.size()), NB.Flags);
  }

  /// Create the (i64 iv, ptr args) callback for a worksharing body.
  Function *makeBodyFn(const NativeBody &NB, Value *ScratchFromSlot) {
    (void)ScratchFromSlot;
    Function *F = M->createFunction(
        Spec.Name + ".__omp_outlined_body" + std::to_string(BodyCounter++),
        Type::voidTy(), {Type::i64(), Type::ptr()});
    F->addAttr(FnAttr::Internal);
    F->addAttr(FnAttr::AlwaysInline);
    BasicBlock *Saved = B.insertBlock();
    B.setInsertPoint(F->createBlock("entry"));
    ValueScope S = outlinedScope(F, F->arg(1));
    S.Iter = F->arg(0);
    // Scratch travels in the final slot of the argument block.
    bool NeedsScratch = false;
    for (const BodyArg &A : NB.Args)
      NeedsScratch |= A.K == BodyArg::Kind::Scratch;
    if (NeedsScratch)
      S.Scratch = B.load(Type::ptr(), B.gep(F->arg(1), scratchSlotOffset()));
    emitNativeBody(NB, S);
    B.retVoid();
    B.setInsertPoint(Saved);
    return F;
  }

  /// Emit "if (Cond) { Fn() }" around a code snippet; returns with the
  /// insertion point in the merge block.
  void emitGuarded(Value *Cond, const std::function<void()> &Fn,
                   const char *Tag) {
    BasicBlock *ThenBB = K->createBlock(std::string(Tag) + ".then");
    BasicBlock *MergeBB = K->createBlock(std::string(Tag) + ".merge");
    B.condBr(Cond, ThenBB, MergeBB);
    B.setInsertPoint(ThenBB);
    Fn();
    B.br(MergeBB);
    B.setInsertPoint(MergeBB);
  }

  //===--------------------------------------------------------------------===//
  // NewRT, SPMD mode: combined distribute-parallel-for kernels
  //===--------------------------------------------------------------------===//

  void emitNewSpmd() {
    K->setExecMode(ExecMode::SPMD);
    rtCall(abi::TargetInitName, {B.i32(abi::ModeSPMD)});
    for (const Stmt &S : Spec.Stmts) {
      CODESIGN_ASSERT(S.K == StmtKind::DistributeParallelFor,
                      "SPMD kernels contain only combined loops");
      Function *BodyFn = makeBodyFn(S.Body, nullptr);
      // Argument block: the frontend globalizes conservatively (it cannot
      // prove the body never shares the captures); globalization
      // elimination (Section IV-A2) demotes this to a thread-private
      // alloca when the pointer provably stays with its thread.
      Value *ArgsPtr =
          rtCall(abi::AllocSharedName,
                 {B.i64(static_cast<std::int64_t>(argBlockBytes()))});
      packArgs(ArgsPtr);
      Value *Scratch = nullptr;
      if (S.ScratchBytes > 0) {
        // One allocation per team, published to everyone.
        Value *IsLead = B.icmpEQ(B.threadId(), B.i32(0));
        BasicBlock *AllocBB = K->createBlock("scratch.alloc");
        BasicBlock *ContBB = K->createBlock("scratch.cont");
        BasicBlock *Here = B.insertBlock();
        B.condBr(IsLead, AllocBB, ContBB);
        B.setInsertPoint(AllocBB);
        Value *P = rtCall(abi::AllocSharedName,
                          {B.i64(static_cast<std::int64_t>(S.ScratchBytes))});
        B.br(ContBB);
        B.setInsertPoint(ContBB);
        Instruction *Phi = B.phi(Type::ptr());
        Phi->addIncoming(P, AllocBB);
        Phi->addIncoming(M->undef(Type::ptr()), Here);
        Scratch = rtCall(abi::BroadcastPtrName, {Phi, IsLead});
        B.store(Scratch, B.gep(ArgsPtr, scratchSlotOffset()));
      }
      // The trip count is evaluated before the parallel region begins —
      // when it is loaded from memory, that access pins the region-begin
      // barrier (Section VII's GridMini/XSBench discussion).
      Value *Trip = emitTripCount(S.Trip, kernelScope());
      rtCall(abi::SpmdParallelBeginName, {});
      rtCall(abi::DistributeForStaticLoopName,
             {BodyFn->asValue(), ArgsPtr, Trip});
      rtCall(abi::SpmdParallelEndName, {});
      if (S.ScratchBytes > 0) {
        Value *IsLead = B.icmpEQ(B.threadId(), B.i32(0));
        Value *Captured = Scratch;
        const std::int64_t Bytes =
            static_cast<std::int64_t>(S.ScratchBytes);
        emitGuarded(
            IsLead,
            [&] { rtCall(abi::FreeSharedName, {Captured, B.i64(Bytes)}); },
            "scratch.free");
      }
      rtCall(abi::FreeSharedName,
             {ArgsPtr, B.i64(static_cast<std::int64_t>(argBlockBytes()))});
    }
    rtCall(abi::TargetDeinitName, {B.i32(abi::ModeSPMD)});
    B.retVoid();
  }

  //===--------------------------------------------------------------------===//
  // NewRT, generic mode: state machine + fork/join
  //===--------------------------------------------------------------------===//

  void emitNewGeneric() {
    K->setExecMode(ExecMode::Generic);
    rtCall(abi::TargetInitName, {B.i32(abi::ModeGeneric)});
    Value *Tid = B.threadId();
    Value *IsMain = B.icmpEQ(Tid, B.sub(B.blockDim(), B.i32(1)));
    BasicBlock *MainBB = K->createBlock("main");
    BasicBlock *WorkerLoop = K->createBlock("worker.loop");
    BasicBlock *WorkerExec = K->createBlock("worker.exec");
    BasicBlock *WorkerExit = K->createBlock("worker.exit");
    B.condBr(IsMain, MainBB, WorkerLoop);

    // The state machine, emitted inline so SPMDization can delete it
    // (Sections II-C and IV-A3).
    B.setInsertPoint(WorkerLoop);
    Value *Fn = rtCall(abi::WorkFnWaitName, {});
    Value *Done = B.icmpEQ(B.ptrToInt(Fn), B.i64(0));
    B.condBr(Done, WorkerExit, WorkerExec);
    B.setInsertPoint(WorkerExec);
    Value *WArgs = rtCall(abi::WorkFnArgsName, {});
    Value *Size = rtCall(abi::GetNumThreadsName, {});
    Value *Participates = B.icmpSLT(B.threadId(), Size);
    emitGuarded(
        Participates,
        [&] { B.callIndirect(Type::voidTy(), Fn, {WArgs}); },
        "worker.part");
    rtCall(abi::WorkFnDoneName, {});
    B.br(WorkerLoop);
    B.setInsertPoint(WorkerExit);
    B.retVoid();

    // The sequential main-thread region.
    B.setInsertPoint(MainBB);
    for (const Stmt &S : Spec.Stmts)
      emitGenericTopLevelStmt(S);
    rtCall(abi::TargetDeinitName, {B.i32(abi::ModeGeneric)});
    B.retVoid();
  }

  void emitGenericTopLevelStmt(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Serial: {
      ValueScope Scope = kernelScope();
      emitNativeBody(S.Body, Scope);
      return;
    }
    case StmtKind::SetNumThreads:
      rtCall(abi::SetNumThreadsName, {B.i32(S.IcvValue)});
      return;
    case StmtKind::Parallel:
      emitGenericParallel(S);
      return;
    case StmtKind::DistributeParallelFor: {
      // Combined loop in generic mode: a parallel region whose outlined
      // function runs the league-wide worksharing loop over the workers.
      Stmt AsParallel = Stmt::parallel({Stmt::forLoop(S.Trip, S.Body)}, 0,
                                       S.ScratchBytes);
      AsParallel.Children[0].K = StmtKind::For;
      emitGenericParallel(AsParallel, /*CombinedDistribute=*/true);
      return;
    }
    case StmtKind::For:
      CODESIGN_UNREACHABLE("validated: no bare for at top level");
    }
  }

  void emitGenericParallel(const Stmt &P, bool CombinedDistribute = false) {
    // Globalized argument block: the main thread packs it, the workers read
    // it — this is variable globalization (Section IV-A2) and uses the
    // shared-memory stack (Section III-D).
    Value *ArgsPtr =
        rtCall(abi::AllocSharedName,
               {B.i64(static_cast<std::int64_t>(argBlockBytes()))});
    packArgs(ArgsPtr);
    Value *Scratch = nullptr;
    if (P.ScratchBytes > 0) {
      Scratch = rtCall(abi::AllocSharedName,
                       {B.i64(static_cast<std::int64_t>(P.ScratchBytes))});
      B.store(Scratch, B.gep(ArgsPtr, scratchSlotOffset()));
    }
    Function *Outlined = makeOutlinedParallel(P, CombinedDistribute);
    rtCall(abi::ParallelName,
           {Outlined->asValue(), ArgsPtr, B.i32(P.NumThreadsClause)});
    if (Scratch)
      rtCall(abi::FreeSharedName,
             {Scratch, B.i64(static_cast<std::int64_t>(P.ScratchBytes))});
    rtCall(abi::FreeSharedName,
           {ArgsPtr, B.i64(static_cast<std::int64_t>(argBlockBytes()))});
  }

  Function *makeOutlinedParallel(const Stmt &P, bool CombinedDistribute) {
    Function *F = M->createFunction(
        Spec.Name + ".__omp_outlined" + std::to_string(OutlinedCounter++),
        Type::voidTy(), {Type::ptr()});
    F->addAttr(FnAttr::Internal);
    F->addAttr(FnAttr::AlwaysInline);
    BasicBlock *Saved = B.insertBlock();
    B.setInsertPoint(F->createBlock("entry"));
    if (P.HasDirectBody) {
      ValueScope Scope = outlinedScope(F, F->arg(0));
      emitNativeBody(P.Body, Scope);
    }
    for (const Stmt &S : P.Children) {
      switch (S.K) {
      case StmtKind::For: {
        Function *BodyFn = makeBodyFn(S.Body, nullptr);
        ValueScope Scope = outlinedScope(F, F->arg(0));
        Value *Trip = emitTripCount(S.Trip, Scope);
        rtCall(CombinedDistribute ? abi::DistributeForGenericLoopName
                                  : abi::ForStaticLoopName,
               {BodyFn->asValue(), F->arg(0), Trip});
        break;
      }
      case StmtKind::SetNumThreads:
        rtCall(abi::SetNumThreadsName, {B.i32(S.IcvValue)});
        break;
      case StmtKind::Parallel: {
        // Nested parallel: serialized by the runtime with an individual
        // thread ICV state (Figure 4 / Section III-E).
        Function *Nested = makeOutlinedParallel(S, false);
        rtCall(abi::ParallelName,
               {Nested->asValue(), F->arg(0), B.i32(S.NumThreadsClause)});
        break;
      }
      default:
        CODESIGN_UNREACHABLE("validated parallel child");
      }
    }
    B.retVoid();
    B.setInsertPoint(Saved);
    return F;
  }

  //===--------------------------------------------------------------------===//
  // OldRT, generic mode only
  //===--------------------------------------------------------------------===//

  void emitOldGeneric() {
    K->setExecMode(ExecMode::Generic);
    rtCall(abi::OldInitName, {B.i32(0)});
    Value *Tid = B.threadId();
    Value *IsMain = B.icmpEQ(Tid, B.sub(B.blockDim(), B.i32(1)));
    BasicBlock *MainBB = K->createBlock("main");
    BasicBlock *WorkerLoop = K->createBlock("worker.loop");
    BasicBlock *WorkerExec = K->createBlock("worker.exec");
    BasicBlock *WorkerExit = K->createBlock("worker.exit");
    B.condBr(IsMain, MainBB, WorkerLoop);

    B.setInsertPoint(WorkerLoop);
    Value *Fn = rtCall("__old_kmpc_workfn_wait", {});
    Value *Done = B.icmpEQ(B.ptrToInt(Fn), B.i64(0));
    B.condBr(Done, WorkerExit, WorkerExec);
    B.setInsertPoint(WorkerExec);
    Value *WArgs = rtCall("__old_kmpc_workfn_args", {});
    Value *Size = rtCall(abi::OldGetNumThreadsName, {});
    Value *Participates = B.icmpSLT(B.threadId(), Size);
    emitGuarded(
        Participates,
        [&] { B.callIndirect(Type::voidTy(), Fn, {WArgs}); },
        "worker.part");
    rtCall("__old_kmpc_workfn_done", {});
    B.br(WorkerLoop);
    B.setInsertPoint(WorkerExit);
    B.retVoid();

    B.setInsertPoint(MainBB);
    for (const Stmt &S : Spec.Stmts)
      emitOldTopLevelStmt(S);
    rtCall(abi::OldDeinitName, {});
    B.retVoid();
  }

  void emitOldTopLevelStmt(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Serial:
      emitNativeBody(S.Body, kernelScope());
      return;
    case StmtKind::SetNumThreads:
      return; // the legacy runtime ignores it on the device
    case StmtKind::Parallel:
      emitOldParallel(S);
      return;
    case StmtKind::DistributeParallelFor: {
      Stmt AsParallel = Stmt::parallel({Stmt::forLoop(S.Trip, S.Body)}, 0,
                                       S.ScratchBytes);
      emitOldParallel(AsParallel, /*CombinedDistribute=*/true);
      return;
    }
    case StmtKind::For:
      CODESIGN_UNREACHABLE("validated: no bare for at top level");
    }
  }

  void emitOldParallel(const Stmt &P, bool CombinedDistribute = false) {
    Value *ArgsPtr =
        rtCall("__old_kmpc_data_sharing_push",
               {B.i64(static_cast<std::int64_t>(argBlockBytes()))});
    packArgs(ArgsPtr);
    Value *Scratch = nullptr;
    if (P.ScratchBytes > 0) {
      Scratch = rtCall("__old_kmpc_data_sharing_push",
                       {B.i64(static_cast<std::int64_t>(P.ScratchBytes))});
      B.store(Scratch, B.gep(ArgsPtr, scratchSlotOffset()));
    }
    Function *Outlined = makeOldOutlined(P, CombinedDistribute);
    rtCall(abi::OldParallelName,
           {Outlined->asValue(), ArgsPtr, B.i32(P.NumThreadsClause)});
    rtCall(abi::OldEndParallelName, {});
    if (Scratch)
      rtCall("__old_kmpc_data_sharing_pop",
             {Scratch, B.i64(static_cast<std::int64_t>(P.ScratchBytes))});
    rtCall("__old_kmpc_data_sharing_pop",
           {ArgsPtr, B.i64(static_cast<std::int64_t>(argBlockBytes()))});
  }

  Function *makeOldOutlined(const Stmt &P, bool CombinedDistribute) {
    Function *F = M->createFunction(
        Spec.Name + ".__old_outlined" + std::to_string(OutlinedCounter++),
        Type::voidTy(), {Type::ptr()});
    F->addAttr(FnAttr::Internal);
    BasicBlock *Saved = B.insertBlock();
    B.setInsertPoint(F->createBlock("entry"));
    if (P.HasDirectBody) {
      ValueScope Scope = outlinedScope(F, F->arg(0));
      emitNativeBody(P.Body, Scope);
    }
    for (const Stmt &S : P.Children) {
      switch (S.K) {
      case StmtKind::For:
        emitOldWorksharingLoop(F, S, CombinedDistribute);
        break;
      case StmtKind::Parallel: {
        // The legacy runtime serializes nested parallels by direct call.
        Function *Nested = makeOldOutlined(S, false);
        B.call(Nested, {F->arg(0)});
        break;
      }
      case StmtKind::SetNumThreads:
        break;
      default:
        CODESIGN_UNREACHABLE("validated parallel child");
      }
    }
    B.retVoid();
    B.setInsertPoint(Saved);
    return F;
  }

  /// The legacy memory-out-parameter worksharing pattern: lb/ub/stride
  /// round-trip through local memory and the loop lives in application IR.
  void emitOldWorksharingLoop(Function *F, const Stmt &S,
                              bool CombinedDistribute) {
    Function *BodyFn = makeBodyFn(S.Body, nullptr);
    Value *PLb = B.allocaBytes(8, "plb");
    Value *PUb = B.allocaBytes(8, "pub");
    Value *PStride = B.allocaBytes(8, "pstride");
    ValueScope Scope = outlinedScope(F, F->arg(0));
    Value *Trip = emitTripCount(S.Trip, Scope);
    rtCall(CombinedDistribute ? abi::OldDistributeInitName
                              : abi::OldForStaticInitName,
           {PLb, PUb, PStride, Trip});
    Value *Lb = B.load(Type::i64(), PLb);
    Value *Ub = B.load(Type::i64(), PUb);
    Value *Stride = B.load(Type::i64(), PStride);

    BasicBlock *Pre = B.insertBlock();
    BasicBlock *Header = F->createBlock("oldws.header");
    BasicBlock *Body = F->createBlock("oldws.body");
    BasicBlock *Exit = F->createBlock("oldws.exit");
    B.br(Header);
    B.setInsertPoint(Header);
    Instruction *IV = B.phi(Type::i64());
    // Clamp against the real trip count too (the blocked schedule can
    // produce Lb beyond N for late threads).
    Value *InRange = B.and_(B.icmpSLT(IV, Ub), B.icmpSLT(IV, Trip));
    B.condBr(InRange, Body, Exit);
    B.setInsertPoint(Body);
    B.call(BodyFn, {IV, F->arg(0)});
    Value *Next = B.add(IV, Stride);
    B.br(Header);
    IV->addIncoming(Lb, Pre);
    IV->addIncoming(Next, Body);
    B.setInsertPoint(Exit);
    rtCall(abi::OldForStaticFiniName, {});
  }

  //===--------------------------------------------------------------------===//
  // Native (CUDA-style) lowering: no runtime at all
  //===--------------------------------------------------------------------===//

  void emitNative() {
    K->setExecMode(ExecMode::SPMD);
    for (const Stmt &S : Spec.Stmts)
      emitNativeStmt(S);
    B.retVoid();
  }

  Value *nativeScratch(std::uint64_t Bytes) {
    // CUDA __shared__ array: a static shared global per scratch user.
    GlobalVariable *G = M->createGlobal(
        Spec.Name + ".smem" + std::to_string(ScratchCounter++),
        AddrSpace::Shared, Bytes, 16);
    return G;
  }

  void emitNativeStmt(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Serial: {
      // Once per team: leader executes, then a barrier publishes effects.
      Value *IsLead = B.icmpEQ(B.threadId(), B.i32(0));
      emitGuarded(
          IsLead, [&] { emitNativeBody(S.Body, kernelScope()); },
          "serial");
      B.alignedBarrier(0);
      return;
    }
    case StmtKind::SetNumThreads:
      return; // meaningless without a runtime
    case StmtKind::Parallel: {
      ValueScope Scope = kernelScope();
      if (S.ScratchBytes > 0)
        Scope.Scratch = nativeScratch(S.ScratchBytes);
      if (S.HasDirectBody)
        emitNativeBody(S.Body, Scope);
      for (const Stmt &C : S.Children)
        emitNativeParallelChild(C, Scope);
      return;
    }
    case StmtKind::DistributeParallelFor: {
      ValueScope Scope = kernelScope();
      if (S.ScratchBytes > 0)
        Scope.Scratch = nativeScratch(S.ScratchBytes);
      Value *Trip = emitTripCount(S.Trip, Scope);
      emitNativeGridStrideLoop(S.Body, Trip, Scope, /*LeagueWide=*/true);
      return;
    }
    case StmtKind::For:
      CODESIGN_UNREACHABLE("validated: no bare for at top level");
    }
  }

  void emitNativeParallelChild(const Stmt &C, ValueScope &Scope) {
    switch (C.K) {
    case StmtKind::For: {
      Value *Trip = emitTripCount(C.Trip, Scope);
      emitNativeGridStrideLoop(C.Body, Trip, Scope, /*LeagueWide=*/false);
      B.alignedBarrier(0); // worksharing join
      return;
    }
    case StmtKind::Parallel: {
      // Nested parallelism has no CUDA equivalent: inline sequentially.
      if (C.HasDirectBody)
        emitNativeBody(C.Body, Scope);
      for (const Stmt &CC : C.Children)
        emitNativeParallelChild(CC, Scope);
      return;
    }
    case StmtKind::SetNumThreads:
      return;
    default:
      CODESIGN_UNREACHABLE("validated parallel child");
    }
  }

  /// The CUDA idiom: for (i = gid; i < n; i += total) body(i);
  void emitNativeGridStrideLoop(const NativeBody &NB, Value *Trip,
                                ValueScope &Scope, bool LeagueWide) {
    Value *Tid = B.zext(B.threadId(), Type::i64());
    Value *Dim = B.zext(B.blockDim(), Type::i64());
    Value *IV0 = Tid;
    Value *Stride = Dim;
    if (LeagueWide) {
      Value *Bid = B.zext(B.blockId(), Type::i64());
      Value *Grid = B.zext(B.gridDim(), Type::i64());
      IV0 = B.add(B.mul(Bid, Dim), Tid);
      Stride = B.mul(Grid, Dim);
    }
    BasicBlock *Pre = B.insertBlock();
    BasicBlock *Header = K->createBlock("gs.header");
    BasicBlock *Body = K->createBlock("gs.body");
    BasicBlock *Exit = K->createBlock("gs.exit");
    B.br(Header);
    B.setInsertPoint(Header);
    Instruction *IV = B.phi(Type::i64());
    B.condBr(B.icmpSLT(IV, Trip), Body, Exit);
    B.setInsertPoint(Body);
    ValueScope BodyScope = Scope;
    BodyScope.Iter = IV;
    emitNativeBody(NB, BodyScope);
    Value *Next = B.add(IV, Stride);
    B.br(Header);
    IV->addIncoming(IV0, Pre);
    IV->addIncoming(Next, Body);
    B.setInsertPoint(Exit);
  }

  const KernelSpec &Spec;
  const CodegenOptions &Opts;
  std::unique_ptr<Module> M;
  IRBuilder B;
  Function *K = nullptr;
  unsigned BodyCounter = 0;
  unsigned OutlinedCounter = 0;
  unsigned ScratchCounter = 0;
};

} // namespace

Expected<CodegenResult> emitKernel(const KernelSpec &Spec,
                                   const CodegenOptions &Options) {
  return KernelEmitter(Spec, Options).run();
}

} // namespace codesign::frontend
