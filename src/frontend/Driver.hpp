//===- frontend/Driver.hpp - Link the chosen runtime into an app module ----===//
#pragma once

#include "frontend/Codegen.hpp"

namespace codesign::frontend {

/// Link the runtime matching Kind into AppModule (no-op for Native),
/// reproducing the paper's Section II-B flow: the device RTL is merged as a
/// "bitcode library" before any optimization runs.
Expected<bool> linkRuntime(ir::Module &AppModule, RuntimeKind Kind);

} // namespace codesign::frontend
