//===- frontend/Driver.hpp - Link the chosen runtime into an app module ----===//
#pragma once

#include "frontend/Codegen.hpp"

namespace codesign::frontend {

/// Link the runtime matching Kind into AppModule (no-op for Native),
/// reproducing the paper's Section II-B flow: the device RTL is merged as a
/// "bitcode library" before any optimization runs.
Expected<bool> linkRuntime(ir::Module &AppModule, RuntimeKind Kind);

/// True when the legacy pre-co-design runtime was compiled in
/// (-DCODESIGN_BUILD_OLDRT=ON). When false, RuntimeKind::OldRT fails
/// linkRuntime with an explicit error, and paperBuildConfigs() omits the
/// "Old RT (Nightly)" baseline.
bool hasOldRT();

} // namespace codesign::frontend
