//===- frontend/KernelCache.hpp - Content-addressed compiled-kernel cache --===//
//
// The benches recompile the same (spec, options) pairs many times — every
// figure sweeps the same proxy kernels over the five build configurations.
// This cache keys compiled kernels on the full content of the request: the
// serialized KernelSpec, the names and declared register pressure of every
// referenced native op, and every codegen/pipeline switch. The key is the
// complete serialization (not a digest), so lookups cannot collide.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "frontend/TargetCompiler.hpp"

namespace codesign::frontend {

/// Process-wide cache of compiled kernels. Hits share the immutable module
/// via CompiledKernel's shared_ptr; hit/miss totals are mirrored into
/// support::Counters ("kernel-cache.hits" / "kernel-cache.misses").
class KernelCache {
public:
  static KernelCache &global();

  /// Build the content-addressed key for a compilation request. PipelineStr
  /// is the canonical text of the resolved pipeline spec (PipelineSpec::str);
  /// it captures the pass sequence the toggles and any Opt.Pipeline override
  /// imply, so a pipeline override reaching the same toggles still gets its
  /// own entry. Empty when the optimizer does not run.
  static std::string key(const KernelSpec &Spec, const CompileOptions &Options,
                         const vgpu::NativeRegistry &Registry,
                         std::string_view PipelineStr = {});

  /// Cached kernel for Key; nullopt on miss. Counts a hit or a miss.
  std::optional<CompiledKernel> lookup(const std::string &Key);
  /// Record a successful compilation under Key (failures are not cached).
  void insert(const std::string &Key, const CompiledKernel &CK);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;
  /// Drop every entry and zero the hit/miss counters (test isolation).
  void clear();

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, CompiledKernel> Entries;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
};

} // namespace codesign::frontend
