//===- frontend/KernelCache.hpp - Sharded compiled-kernel cache ------------===//
//
// The benches recompile the same (spec, options) pairs many times — every
// figure sweeps the same proxy kernels over the five build configurations —
// and the multi-tenant service (src/service) adds thousands of *concurrent*
// requests for the same kernels. The cache therefore provides:
//
//  * Content addressing: compiled kernels are keyed on the full content of
//    the request — the serialized KernelSpec, the names and declared
//    register pressure of every referenced native op, and every
//    codegen/pipeline switch. The key is the complete serialization (not a
//    digest), so lookups cannot collide.
//
//  * Sharding: entries are distributed over NumShards independently locked
//    shards by key hash, so concurrent compiles of distinct kernels do not
//    serialize on one mutex.
//
//  * Single-flight deduplication: getOrCompile guarantees that N concurrent
//    requests for the same key perform exactly one compilation — the first
//    requester compiles while the rest block on the in-flight entry and
//    share its result. 1000 identical concurrent compiles = 1 miss.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "frontend/TargetCompiler.hpp"

namespace codesign::frontend {

/// Process-wide cache of compiled kernels. Hits share the immutable module
/// via CompiledKernel's shared_ptr; hit/miss/coalesced totals are mirrored
/// into support::Counters ("kernel-cache.hits" / "kernel-cache.misses" /
/// "kernel-cache.coalesced").
class KernelCache {
public:
  /// Shard fan-out. A small power of two: enough that a handful of service
  /// workers compiling distinct kernels rarely contend on one lock, small
  /// enough that per-shard hit rates stay meaningful in bench reports.
  static constexpr std::size_t NumShards = 8;

  /// Per-shard event counts. Misses count executed compilations; coalesced
  /// counts requests that waited on another thread's in-flight compile
  /// (the single-flight proof: misses per distinct key is exactly 1 no
  /// matter how many requests raced).
  struct ShardStats {
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Coalesced = 0;
    std::uint64_t Entries = 0;
  };

  /// Snapshot of every shard plus aggregate accessors.
  struct Stats {
    std::array<ShardStats, NumShards> Shards;
    [[nodiscard]] std::uint64_t hits() const { return total(&ShardStats::Hits); }
    [[nodiscard]] std::uint64_t misses() const {
      return total(&ShardStats::Misses);
    }
    [[nodiscard]] std::uint64_t coalesced() const {
      return total(&ShardStats::Coalesced);
    }
    [[nodiscard]] std::uint64_t entries() const {
      return total(&ShardStats::Entries);
    }

  private:
    [[nodiscard]] std::uint64_t total(std::uint64_t ShardStats::*F) const {
      std::uint64_t Sum = 0;
      for (const ShardStats &S : Shards)
        Sum += S.*F;
      return Sum;
    }
  };

  /// How a getOrCompile request was satisfied.
  enum class Outcome {
    Hit,       ///< served from a completed entry
    Miss,      ///< this caller executed the compilation
    Coalesced, ///< waited on another caller's in-flight compilation
  };

  static KernelCache &global();

  /// Build the content-addressed key for a compilation request. PipelineStr
  /// is the canonical text of the resolved pipeline spec (PipelineSpec::str);
  /// it captures the pass sequence the toggles and any Opt.Pipeline override
  /// imply, so a pipeline override reaching the same toggles still gets its
  /// own entry. Empty when the optimizer does not run.
  static std::string key(const KernelSpec &Spec, const CompileOptions &Options,
                         const vgpu::NativeRegistry &Registry,
                         std::string_view PipelineStr = {});

  /// The single-flight entry point: return the cached kernel for Key, or
  /// run Compile exactly once per key no matter how many threads race.
  /// Concurrent requesters for the same key block until the winner's
  /// Compile returns and then share its result. Failed compilations are
  /// not cached (every waiter receives the error; a later request retries).
  /// WasOutcome, when given, reports how this call was satisfied.
  Expected<CompiledKernel>
  getOrCompile(const std::string &Key,
               const std::function<Expected<CompiledKernel>()> &Compile,
               Outcome *WasOutcome = nullptr);

  /// Cached kernel for Key; nullopt on miss. Counts a hit or a miss.
  /// (Non-coalescing probe, kept for direct cache inspection; compileKernel
  /// goes through getOrCompile.)
  std::optional<CompiledKernel> lookup(const std::string &Key);
  /// Record a successful compilation under Key (failures are not cached).
  void insert(const std::string &Key, const CompiledKernel &CK);

  /// Per-shard and aggregate statistics.
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint64_t hits() const { return stats().hits(); }
  [[nodiscard]] std::uint64_t misses() const { return stats().misses(); }
  [[nodiscard]] std::uint64_t coalesced() const { return stats().coalesced(); }
  [[nodiscard]] std::size_t size() const;
  /// Drop every entry and zero the counters (test isolation). Must not be
  /// called while compilations are in flight.
  void clear();

  /// Shard a key the same way the cache does (bench reports label shards).
  static std::size_t shardOf(const std::string &Key) {
    return std::hash<std::string>{}(Key) % NumShards;
  }

private:
  /// An in-flight compilation: the winner fills Result/Err and flips Done;
  /// losers wait on CV. Kept alive by shared_ptr so waiters survive the
  /// shard erasing the marker.
  struct Flight {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    bool Ok = false;
    CompiledKernel Result;
    std::string ErrMsg;
  };

  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<std::string, CompiledKernel> Entries;
    std::unordered_map<std::string, std::shared_ptr<Flight>> InFlight;
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Coalesced = 0;
  };

  std::array<Shard, NumShards> Shards;
};

} // namespace codesign::frontend
