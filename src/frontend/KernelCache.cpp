#include "frontend/KernelCache.hpp"

#include "support/Stats.hpp"

namespace codesign::frontend {

namespace {

/// Unambiguous serialization helpers: numbers in decimal followed by ';',
/// strings length-prefixed. No two distinct requests share a key.
void putNum(std::string &Out, std::int64_t V) {
  Out += std::to_string(V);
  Out += ';';
}

void putStr(std::string &Out, std::string_view S) {
  putNum(Out, static_cast<std::int64_t>(S.size()));
  Out += S;
}

void putTrip(std::string &Out, const TripCount &T) {
  putNum(Out, static_cast<std::int64_t>(T.K));
  putNum(Out, T.Const);
  putNum(Out, T.ArgIndex);
  putNum(Out, T.Offset);
}

void putBody(std::string &Out, const NativeBody &B,
             const vgpu::NativeRegistry &Registry) {
  // A NativeId is only a dense index into the caller's registry; the name
  // and declared register pressure are what give it meaning across runs.
  putNum(Out, B.NativeId);
  const vgpu::NativeOpInfo &Info = Registry.get(B.NativeId);
  putStr(Out, Info.Name);
  putNum(Out, Info.ExtraRegisters);
  putNum(Out, (B.Flags.ReadsMemory ? 1 : 0) | (B.Flags.WritesMemory ? 2 : 0) |
                  (B.Flags.Divergent ? 4 : 0));
  putNum(Out, static_cast<std::int64_t>(B.Args.size()));
  for (const BodyArg &A : B.Args) {
    putNum(Out, static_cast<std::int64_t>(A.K));
    putNum(Out, A.ArgIndex);
    putNum(Out, A.Const);
  }
}

void putStmt(std::string &Out, const Stmt &S,
             const vgpu::NativeRegistry &Registry) {
  putNum(Out, static_cast<std::int64_t>(S.K));
  putNum(Out, S.NumThreadsClause);
  putNum(Out, static_cast<std::int64_t>(S.ScratchBytes));
  putNum(Out, S.IcvValue);
  putNum(Out, S.HasDirectBody ? 1 : 0);
  putTrip(Out, S.Trip);
  const bool HasBody = S.K != StmtKind::SetNumThreads &&
                       (S.K != StmtKind::Parallel || S.HasDirectBody);
  putNum(Out, HasBody ? 1 : 0);
  if (HasBody)
    putBody(Out, S.Body, Registry);
  putNum(Out, static_cast<std::int64_t>(S.Children.size()));
  for (const Stmt &C : S.Children)
    putStmt(Out, C, Registry);
}

} // namespace

KernelCache &KernelCache::global() {
  static KernelCache C;
  return C;
}

std::string KernelCache::key(const KernelSpec &Spec,
                             const CompileOptions &Options,
                             const vgpu::NativeRegistry &Registry,
                             std::string_view PipelineStr) {
  std::string Key;
  Key.reserve(256);
  putStr(Key, Spec.Name);
  putNum(Key, static_cast<std::int64_t>(Spec.Params.size()));
  for (const ParamSpec &P : Spec.Params) {
    putNum(Key, static_cast<std::int64_t>(P.Ty.kind()));
    putStr(Key, P.Name);
    // Map clauses are part of the kernel's contract (they land as IR
    // annotations the inference pass and lint rules read), so two specs
    // differing only in clauses must not share a cache entry.
    putNum(Key, static_cast<std::int64_t>(P.Map));
  }
  putNum(Key, static_cast<std::int64_t>(Spec.Stmts.size()));
  for (const Stmt &S : Spec.Stmts)
    putStmt(Key, S, Registry);
  // Codegen switches.
  const CodegenOptions &CG = Options.CG;
  putNum(Key, static_cast<std::int64_t>(CG.RT));
  putNum(Key, CG.ForceGenericMode ? 1 : 0);
  putNum(Key, CG.DebugKind);
  putNum(Key, CG.AssumeTeamsOversubscription ? 1 : 0);
  putNum(Key, CG.AssumeThreadsOversubscription ? 1 : 0);
  // Pipeline switches.
  const opt::OptOptions &O = Options.Opt;
  putNum(Key, (O.EnableInlining ? 1 : 0) | (O.EnableSPMDization ? 2 : 0) |
                  (O.EnableGlobalizationElim ? 4 : 0) |
                  (O.EnableFieldSensitiveProp ? 8 : 0) |
                  (O.EnableInterprocDominance ? 16 : 0) |
                  (O.EnableAssumedMemoryContent ? 32 : 0) |
                  (O.EnableInvariantProp ? 64 : 0) |
                  (O.EnableAlignedExecReasoning ? 128 : 0) |
                  (O.EnableBarrierElim ? 256 : 0) | (O.KeepAssumes ? 512 : 0));
  putNum(Key, O.MaxFixpointRounds);
  putNum(Key, Options.RunOptimizer ? 1 : 0);
  // The resolved pipeline: distinguishes Opt.Pipeline overrides that the
  // toggle bits above cannot see.
  putStr(Key, PipelineStr);
  return Key;
}

Expected<CompiledKernel> KernelCache::getOrCompile(
    const std::string &Key,
    const std::function<Expected<CompiledKernel>()> &Compile,
    Outcome *WasOutcome) {
  Shard &S = Shards[shardOf(Key)];
  std::shared_ptr<Flight> F;
  {
    std::unique_lock<std::mutex> Lock(S.Mutex);
    if (auto It = S.Entries.find(Key); It != S.Entries.end()) {
      ++S.Hits;
      Counters::global().add("kernel-cache.hits");
      if (WasOutcome)
        *WasOutcome = Outcome::Hit;
      return It->second;
    }
    if (auto It = S.InFlight.find(Key); It != S.InFlight.end()) {
      // Someone else is compiling this key right now: coalesce onto their
      // flight instead of compiling again.
      ++S.Coalesced;
      Counters::global().add("kernel-cache.coalesced");
      F = It->second;
    } else {
      // This caller wins the flight and compiles below, outside the shard
      // lock — other keys in this shard stay serviceable meanwhile.
      ++S.Misses;
      Counters::global().add("kernel-cache.misses");
      F = std::make_shared<Flight>();
      S.InFlight.emplace(Key, F);
      Lock.unlock();
      auto Result = Compile();
      {
        std::lock_guard<std::mutex> Relock(S.Mutex);
        if (Result)
          S.Entries.emplace(Key, *Result);
        S.InFlight.erase(Key);
      }
      {
        std::lock_guard<std::mutex> FlightLock(F->M);
        F->Done = true;
        F->Ok = Result.hasValue();
        if (Result)
          F->Result = *Result;
        else
          F->ErrMsg = Result.error().message();
      }
      F->CV.notify_all();
      if (WasOutcome)
        *WasOutcome = Outcome::Miss;
      return Result;
    }
  }
  // Coalesced path: wait for the winner to finish, then share its result.
  std::unique_lock<std::mutex> FlightLock(F->M);
  F->CV.wait(FlightLock, [&] { return F->Done; });
  if (WasOutcome)
    *WasOutcome = Outcome::Coalesced;
  if (!F->Ok)
    return Error(F->ErrMsg);
  return F->Result;
}

std::optional<CompiledKernel> KernelCache::lookup(const std::string &Key) {
  Shard &S = Shards[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Entries.find(Key);
  if (It == S.Entries.end()) {
    ++S.Misses;
    Counters::global().add("kernel-cache.misses");
    return std::nullopt;
  }
  ++S.Hits;
  Counters::global().add("kernel-cache.hits");
  return It->second;
}

void KernelCache::insert(const std::string &Key, const CompiledKernel &CK) {
  Shard &S = Shards[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Entries.emplace(Key, CK);
}

KernelCache::Stats KernelCache::stats() const {
  Stats Out;
  for (std::size_t I = 0; I < NumShards; ++I) {
    const Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Out.Shards[I] = ShardStats{S.Hits, S.Misses, S.Coalesced,
                               S.Entries.size()};
  }
  return Out;
}

std::size_t KernelCache::size() const {
  std::size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    N += S.Entries.size();
  }
  return N;
}

void KernelCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    CODESIGN_ASSERT(S.InFlight.empty(),
                    "KernelCache::clear with compilations in flight");
    S.Entries.clear();
    S.Hits = S.Misses = S.Coalesced = 0;
  }
}

} // namespace codesign::frontend
