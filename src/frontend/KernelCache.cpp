#include "frontend/KernelCache.hpp"

#include "support/Stats.hpp"

namespace codesign::frontend {

namespace {

/// Unambiguous serialization helpers: numbers in decimal followed by ';',
/// strings length-prefixed. No two distinct requests share a key.
void putNum(std::string &Out, std::int64_t V) {
  Out += std::to_string(V);
  Out += ';';
}

void putStr(std::string &Out, std::string_view S) {
  putNum(Out, static_cast<std::int64_t>(S.size()));
  Out += S;
}

void putTrip(std::string &Out, const TripCount &T) {
  putNum(Out, static_cast<std::int64_t>(T.K));
  putNum(Out, T.Const);
  putNum(Out, T.ArgIndex);
  putNum(Out, T.Offset);
}

void putBody(std::string &Out, const NativeBody &B,
             const vgpu::NativeRegistry &Registry) {
  // A NativeId is only a dense index into the caller's registry; the name
  // and declared register pressure are what give it meaning across runs.
  putNum(Out, B.NativeId);
  const vgpu::NativeOpInfo &Info = Registry.get(B.NativeId);
  putStr(Out, Info.Name);
  putNum(Out, Info.ExtraRegisters);
  putNum(Out, (B.Flags.ReadsMemory ? 1 : 0) | (B.Flags.WritesMemory ? 2 : 0) |
                  (B.Flags.Divergent ? 4 : 0));
  putNum(Out, static_cast<std::int64_t>(B.Args.size()));
  for (const BodyArg &A : B.Args) {
    putNum(Out, static_cast<std::int64_t>(A.K));
    putNum(Out, A.ArgIndex);
    putNum(Out, A.Const);
  }
}

void putStmt(std::string &Out, const Stmt &S,
             const vgpu::NativeRegistry &Registry) {
  putNum(Out, static_cast<std::int64_t>(S.K));
  putNum(Out, S.NumThreadsClause);
  putNum(Out, static_cast<std::int64_t>(S.ScratchBytes));
  putNum(Out, S.IcvValue);
  putNum(Out, S.HasDirectBody ? 1 : 0);
  putTrip(Out, S.Trip);
  const bool HasBody = S.K != StmtKind::SetNumThreads &&
                       (S.K != StmtKind::Parallel || S.HasDirectBody);
  putNum(Out, HasBody ? 1 : 0);
  if (HasBody)
    putBody(Out, S.Body, Registry);
  putNum(Out, static_cast<std::int64_t>(S.Children.size()));
  for (const Stmt &C : S.Children)
    putStmt(Out, C, Registry);
}

} // namespace

KernelCache &KernelCache::global() {
  static KernelCache C;
  return C;
}

std::string KernelCache::key(const KernelSpec &Spec,
                             const CompileOptions &Options,
                             const vgpu::NativeRegistry &Registry,
                             std::string_view PipelineStr) {
  std::string Key;
  Key.reserve(256);
  putStr(Key, Spec.Name);
  putNum(Key, static_cast<std::int64_t>(Spec.Params.size()));
  for (const ParamSpec &P : Spec.Params) {
    putNum(Key, static_cast<std::int64_t>(P.Ty.kind()));
    putStr(Key, P.Name);
  }
  putNum(Key, static_cast<std::int64_t>(Spec.Stmts.size()));
  for (const Stmt &S : Spec.Stmts)
    putStmt(Key, S, Registry);
  // Codegen switches.
  const CodegenOptions &CG = Options.CG;
  putNum(Key, static_cast<std::int64_t>(CG.RT));
  putNum(Key, CG.ForceGenericMode ? 1 : 0);
  putNum(Key, CG.DebugKind);
  putNum(Key, CG.AssumeTeamsOversubscription ? 1 : 0);
  putNum(Key, CG.AssumeThreadsOversubscription ? 1 : 0);
  // Pipeline switches.
  const opt::OptOptions &O = Options.Opt;
  putNum(Key, (O.EnableInlining ? 1 : 0) | (O.EnableSPMDization ? 2 : 0) |
                  (O.EnableGlobalizationElim ? 4 : 0) |
                  (O.EnableFieldSensitiveProp ? 8 : 0) |
                  (O.EnableInterprocDominance ? 16 : 0) |
                  (O.EnableAssumedMemoryContent ? 32 : 0) |
                  (O.EnableInvariantProp ? 64 : 0) |
                  (O.EnableAlignedExecReasoning ? 128 : 0) |
                  (O.EnableBarrierElim ? 256 : 0) | (O.KeepAssumes ? 512 : 0));
  putNum(Key, O.MaxFixpointRounds);
  putNum(Key, Options.RunOptimizer ? 1 : 0);
  // The resolved pipeline: distinguishes Opt.Pipeline overrides that the
  // toggle bits above cannot see.
  putStr(Key, PipelineStr);
  return Key;
}

std::optional<CompiledKernel> KernelCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    Counters::global().add("kernel-cache.misses");
    return std::nullopt;
  }
  ++Hits;
  Counters::global().add("kernel-cache.hits");
  return It->second;
}

void KernelCache::insert(const std::string &Key, const CompiledKernel &CK) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, CK);
}

std::uint64_t KernelCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

std::uint64_t KernelCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

std::size_t KernelCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
  Hits = Misses = 0;
}

} // namespace codesign::frontend
