//===- frontend/Codegen.hpp - Lowering KernelSpec to IR --------------------===//
#pragma once

#include <functional>
#include <memory>

#include "frontend/KernelSpec.hpp"
#include "ir/Module.hpp"
#include "support/Error.hpp"

namespace codesign::frontend {

/// Which runtime (and therefore which lowering) to use.
enum class RuntimeKind {
  NewRT,  ///< the co-designed runtime of the paper (Section III)
  OldRT,  ///< the legacy baseline runtime
  Native, ///< CUDA-style direct lowering, no runtime
};

/// Frontend options (the "command line" of the paper's Figure 1).
struct CodegenOptions {
  RuntimeKind RT = RuntimeKind::NewRT;
  /// Emit generic mode even for SPMD-compatible regions, leaving the
  /// SPMDization pass (Section IV-A3) to do the conversion.
  bool ForceGenericMode = false;
  /// Debug-kind bits (rt::DebugAssertions | rt::DebugFunctionTracing),
  /// emitted as the constant global @__omp_rtl_debug_kind (Section III-G).
  std::int32_t DebugKind = 0;
  /// -fopenmp-assume-teams-oversubscription (Section III-F).
  bool AssumeTeamsOversubscription = false;
  /// -fopenmp-assume-threads-oversubscription (Section III-F).
  bool AssumeThreadsOversubscription = false;
};

/// Result of lowering: the application module (runtime functions are
/// declarations until ir::linkModules merges the RTL in) and the kernel.
struct CodegenResult {
  std::unique_ptr<ir::Module> AppModule;
  ir::Function *Kernel = nullptr;
};

/// Lower a kernel spec. Fails on malformed specs (e.g. `for` outside a
/// `parallel`, serial statements inside `parallel`).
Expected<CodegenResult> emitKernel(const KernelSpec &Spec,
                                   const CodegenOptions &Options);

} // namespace codesign::frontend
