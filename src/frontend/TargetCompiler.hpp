//===- frontend/TargetCompiler.hpp - Full compilation driver ---------------===//
//
// One-stop compilation mirroring the paper's Figure 1: lower the kernel
// spec with the chosen runtime, link the device RTL in as a "bitcode
// library", run the openmp-opt pipeline, verify, and compute the static
// resource stats (registers / shared memory / code size).
//
//===----------------------------------------------------------------------===//
#pragma once

#include <memory>

#include "frontend/Codegen.hpp"
#include "opt/Pipeline.hpp"
#include "vgpu/KernelStats.hpp"

namespace codesign::frontend {

/// Combined frontend + optimizer configuration.
struct CompileOptions {
  CodegenOptions CG;
  opt::OptOptions Opt;
  /// Skip the optimizer entirely (codegen output runs as-is).
  bool RunOptimizer = true;
  /// Consult the process-wide content-addressed kernel cache (see
  /// KernelCache.hpp). Not part of the cache key; compile-time benchmarks
  /// turn it off so they measure the pipeline, not a map lookup. Requests
  /// carrying a remark collector always bypass the cache (a hit would
  /// produce no remarks).
  bool UseKernelCache = true;

  /// The paper's five build configurations (Figure 11 rows).
  static CompileOptions oldRT();
  static CompileOptions newRTNightly();
  static CompileOptions newRTNoAssumptions();
  static CompileOptions newRT(); ///< with oversubscription assumptions
  static CompileOptions cuda();
};

/// A fully compiled kernel, ready to load onto the virtual GPU. The module
/// is shared so cache hits alias one immutable compilation result; treat it
/// as read-only after compileKernel returns.
struct CompiledKernel {
  std::shared_ptr<ir::Module> M;
  ir::Function *Kernel = nullptr;
  vgpu::KernelStaticStats Stats;
};

/// Compile Spec under Options. The registry is consulted for the register
/// footprint of native loop bodies. Fails on codegen/link/verify errors.
Expected<CompiledKernel> compileKernel(const KernelSpec &Spec,
                                       const CompileOptions &Options,
                                       const vgpu::NativeRegistry &Registry);

} // namespace codesign::frontend
