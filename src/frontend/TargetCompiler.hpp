//===- frontend/TargetCompiler.hpp - Full compilation driver ---------------===//
//
// One-stop compilation mirroring the paper's Figure 1: lower the kernel
// spec with the chosen runtime, link the device RTL in as a "bitcode
// library", run the openmp-opt pipeline, verify, and compute the static
// resource stats (registers / shared memory / code size).
//
//===----------------------------------------------------------------------===//
#pragma once

#include "frontend/Codegen.hpp"
#include "opt/Pipeline.hpp"
#include "vgpu/KernelStats.hpp"

namespace codesign::frontend {

/// Combined frontend + optimizer configuration.
struct CompileOptions {
  CodegenOptions CG;
  opt::OptOptions Opt;
  /// Skip the optimizer entirely (codegen output runs as-is).
  bool RunOptimizer = true;

  /// The paper's five build configurations (Figure 11 rows).
  static CompileOptions oldRT();
  static CompileOptions newRTNightly();
  static CompileOptions newRTNoAssumptions();
  static CompileOptions newRT(); ///< with oversubscription assumptions
  static CompileOptions cuda();
};

/// A fully compiled kernel, ready to load onto the virtual GPU.
struct CompiledKernel {
  std::unique_ptr<ir::Module> M;
  ir::Function *Kernel = nullptr;
  vgpu::KernelStaticStats Stats;
};

/// Compile Spec under Options. The registry is consulted for the register
/// footprint of native loop bodies. Fails on codegen/link/verify errors.
Expected<CompiledKernel> compileKernel(const KernelSpec &Spec,
                                       const CompileOptions &Options,
                                       const vgpu::NativeRegistry &Registry);

} // namespace codesign::frontend
