//===- frontend/TargetCompiler.hpp - Full compilation driver ---------------===//
//
// One-stop compilation mirroring the paper's Figure 1: lower the kernel
// spec with the chosen runtime, link the device RTL in as a "bitcode
// library", run the openmp-opt pipeline, verify, and compute the static
// resource stats (registers / shared memory / code size).
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "frontend/Codegen.hpp"
#include "opt/Pipeline.hpp"
#include "vgpu/KernelStats.hpp"

namespace codesign::vgpu {
struct BytecodeModule;
}

namespace codesign::frontend {

/// Combined frontend + optimizer configuration.
struct CompileOptions {
  CodegenOptions CG;
  opt::OptOptions Opt;
  /// Skip the optimizer entirely (codegen output runs as-is).
  bool RunOptimizer = true;
  /// Consult the process-wide content-addressed kernel cache (see
  /// KernelCache.hpp). Not part of the cache key; compile-time benchmarks
  /// turn it off so they measure the pipeline, not a map lookup. Requests
  /// carrying an observer (remark sink or pass callbacks) always bypass
  /// the cache (a hit would produce no remarks or pass records).
  bool UseKernelCache = true;

  /// The paper's five build configurations (Figure 11 rows).
  static CompileOptions oldRT();
  static CompileOptions newRTNightly();
  static CompileOptions newRTNoAssumptions();
  static CompileOptions newRT(); ///< with oversubscription assumptions
  static CompileOptions cuda();

  // --- Fluent builders ------------------------------------------------------
  // Each returns a modified copy, so configurations compose from the named
  // factories without call sites reaching into the nested CG/Opt members:
  //   CompileOptions::newRT().withDebug(rt::DebugAssertions).withKernelCache(false)

  /// Select the runtime/lowering flavor.
  [[nodiscard]] CompileOptions withRuntime(RuntimeKind RT) const {
    CompileOptions O = *this;
    O.CG.RT = RT;
    return O;
  }
  /// Set the debug-kind bits (rt::DebugAssertions | rt::DebugFunctionTracing).
  [[nodiscard]] CompileOptions withDebug(std::int32_t DebugKind) const {
    CompileOptions O = *this;
    O.CG.DebugKind = DebugKind;
    return O;
  }
  /// Emit generic mode even for SPMD-compatible regions.
  [[nodiscard]] CompileOptions withForceGenericMode(bool On = true) const {
    CompileOptions O = *this;
    O.CG.ForceGenericMode = On;
    return O;
  }
  /// Toggle the Section III-F oversubscription assumptions.
  [[nodiscard]] CompileOptions withOversubscription(bool Teams,
                                                    bool Threads) const {
    CompileOptions O = *this;
    O.CG.AssumeTeamsOversubscription = Teams;
    O.CG.AssumeThreadsOversubscription = Threads;
    return O;
  }
  /// Enable or skip the openmp-opt pipeline.
  [[nodiscard]] CompileOptions withOptimizer(bool On) const {
    CompileOptions O = *this;
    O.RunOptimizer = On;
    return O;
  }
  /// Enable or bypass the process-wide kernel cache.
  [[nodiscard]] CompileOptions withKernelCache(bool On) const {
    CompileOptions O = *this;
    O.UseKernelCache = On;
    return O;
  }
  /// Replace the whole pipeline configuration.
  [[nodiscard]] CompileOptions withOpt(opt::OptOptions Opt) const {
    CompileOptions O = *this;
    O.Opt = std::move(Opt);
    return O;
  }
  /// Apply an edit to the pipeline configuration (ablation benches disable
  /// one pass this way without naming the nested member chain).
  template <typename Fn>
  [[nodiscard]] CompileOptions withOptTweak(Fn &&Tweak) const {
    CompileOptions O = *this;
    Tweak(O.Opt);
    return O;
  }
  /// Override the optimization pipeline with a textual spec (see
  /// opt/PassManager.hpp for the grammar). compileKernel rejects invalid
  /// text; the resolved spec becomes part of the kernel-cache key.
  [[nodiscard]] CompileOptions withPipeline(std::string Pipeline) const {
    CompileOptions O = *this;
    O.Opt.Pipeline = std::move(Pipeline);
    return O;
  }
  /// Attach a remark collector (makes the compile uncacheable).
  [[nodiscard]] CompileOptions withRemarks(opt::RemarkCollector &RC) const {
    CompileOptions O = *this;
    O.Opt.Obs.Remarks = &RC;
    return O;
  }
  /// Attach full pipeline observability hooks (makes the compile
  /// uncacheable).
  [[nodiscard]] CompileOptions withObserver(opt::Observer Obs) const {
    CompileOptions O = *this;
    O.Opt.Obs = std::move(Obs);
    return O;
  }
};

/// Wall time of each compileKernel phase (Figure 1 stages), microseconds.
/// Only populated when tracing is enabled — the steady-clock reads stay off
/// the path otherwise. A cache hit reports CacheHit=true and zero phases.
struct CompilePhaseTiming {
  std::uint64_t CodegenMicros = 0;
  std::uint64_t LinkMicros = 0;
  std::uint64_t OptMicros = 0;
  std::uint64_t VerifyMicros = 0;
  std::uint64_t StatsMicros = 0;
  bool CacheHit = false;

  [[nodiscard]] std::uint64_t totalMicros() const {
    return CodegenMicros + LinkMicros + OptMicros + VerifyMicros +
           StatsMicros;
  }
};

/// A fully compiled kernel, ready to load onto the virtual GPU. The module
/// is shared so cache hits alias one immutable compilation result; treat it
/// as read-only after compileKernel returns.
struct CompiledKernel {
  std::shared_ptr<ir::Module> M;
  ir::Function *Kernel = nullptr;
  vgpu::KernelStaticStats Stats;
  CompilePhaseTiming Timing;
  /// The module lowered to the virtual GPU's dense bytecode (the fast
  /// execution tier). Produced once per compile after verification, cached
  /// alongside the module, and attached to every image loaded from it so
  /// launches never re-lower.
  std::shared_ptr<const vgpu::BytecodeModule> Bytecode;
};

/// Compile Spec under Options. The registry is consulted for the register
/// footprint of native loop bodies. Fails on codegen/link/verify errors.
Expected<CompiledKernel> compileKernel(const KernelSpec &Spec,
                                       const CompileOptions &Options,
                                       const vgpu::NativeRegistry &Registry);

} // namespace codesign::frontend
