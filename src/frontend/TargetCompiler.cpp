#include "frontend/TargetCompiler.hpp"

#include "frontend/Driver.hpp"
#include "frontend/KernelCache.hpp"
#include "ir/Verifier.hpp"

namespace codesign::frontend {

CompileOptions CompileOptions::oldRT() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::OldRT;
  // The full pipeline runs, but the opaque runtime defeats it — that is
  // the point of the baseline.
  return O;
}

CompileOptions CompileOptions::newRTNightly() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  O.Opt = opt::OptOptions::nightly();
  return O;
}

CompileOptions CompileOptions::newRTNoAssumptions() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  return O;
}

CompileOptions CompileOptions::newRT() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  O.CG.AssumeTeamsOversubscription = true;
  O.CG.AssumeThreadsOversubscription = true;
  return O;
}

CompileOptions CompileOptions::cuda() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::Native;
  return O;
}

Expected<CompiledKernel> compileKernel(const KernelSpec &Spec,
                                       const CompileOptions &Options,
                                       const vgpu::NativeRegistry &Registry) {
  // Remark collection observes the pipeline as a side effect, so such
  // requests must actually compile.
  const bool Cacheable = Options.UseKernelCache && Options.Opt.Remarks == nullptr;
  std::string Key;
  if (Cacheable) {
    Key = KernelCache::key(Spec, Options, Registry);
    if (auto Cached = KernelCache::global().lookup(Key))
      return *Cached;
  }
  auto CG = emitKernel(Spec, Options.CG);
  if (!CG)
    return CG.error();
  auto Linked = linkRuntime(*CG->AppModule, Options.CG.RT);
  if (!Linked)
    return Linked.error();
  {
    auto Errors = ir::verifyModule(*CG->AppModule);
    if (!Errors.empty())
      return makeError("post-link verification failed: ", Errors.front());
  }
  if (Options.RunOptimizer) {
    opt::OptOptions OptCfg = Options.Opt;
    // Debug builds keep the assumptions alive so the virtual GPU verifies
    // them at run time (Section III-G).
    if (Options.CG.DebugKind != 0)
      OptCfg.KeepAssumes = true;
    opt::runPipeline(*CG->AppModule, OptCfg);
    auto Errors = ir::verifyModule(*CG->AppModule);
    if (!Errors.empty())
      return makeError("post-optimization verification failed: ",
                       Errors.front());
  }
  CompiledKernel Out;
  Out.Kernel = CG->Kernel;
  Out.M = std::move(CG->AppModule);
  Out.Stats = vgpu::computeKernelStats(*Out.Kernel, Registry);
  if (Cacheable)
    KernelCache::global().insert(Key, Out);
  return Out;
}

} // namespace codesign::frontend
