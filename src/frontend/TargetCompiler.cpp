#include "frontend/TargetCompiler.hpp"

#include "frontend/Driver.hpp"
#include "frontend/KernelCache.hpp"
#include "ir/Verifier.hpp"
#include "opt/MapInference.hpp"
#include "opt/PassManager.hpp"
#include "support/Trace.hpp"
#include "vgpu/Bytecode.hpp"

#include <chrono>

namespace codesign::frontend {

namespace {

/// Lap timer for the compile phases; inert (no clock reads) unless tracing
/// is enabled, so BM_CompileKernelUncached measures the same path as before.
class PhaseClock {
public:
  PhaseClock() : On(trace::Tracer::global().enabled()) {
    if (On)
      Last = std::chrono::steady_clock::now();
  }

  /// Microseconds since construction or the previous lap; 0 when off. Also
  /// records a "frontend" span for the phase.
  std::uint64_t lap(const char *Phase) {
    if (!On)
      return 0;
    const auto Now = std::chrono::steady_clock::now();
    const auto Micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Now - Last)
            .count());
    Last = Now;
    trace::Tracer::global().span("frontend", Phase, Micros);
    return Micros;
  }

private:
  bool On;
  std::chrono::steady_clock::time_point Last;
};

} // namespace

CompileOptions CompileOptions::oldRT() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::OldRT;
  // The full pipeline runs, but the opaque runtime defeats it — that is
  // the point of the baseline.
  return O;
}

CompileOptions CompileOptions::newRTNightly() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  O.Opt = opt::OptOptions::nightly();
  return O;
}

CompileOptions CompileOptions::newRTNoAssumptions() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  return O;
}

CompileOptions CompileOptions::newRT() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::NewRT;
  O.CG.AssumeTeamsOversubscription = true;
  O.CG.AssumeThreadsOversubscription = true;
  return O;
}

CompileOptions CompileOptions::cuda() {
  CompileOptions O;
  O.CG.RT = RuntimeKind::Native;
  return O;
}

namespace {

/// The actual pipeline: codegen, link, verify, optimize, stats, bytecode.
/// Split out so the cached path can run it under single-flight dedup.
Expected<CompiledKernel> compileUncached(const KernelSpec &Spec,
                                         const CompileOptions &Options,
                                         const vgpu::NativeRegistry &Registry,
                                         const opt::OptOptions &OptCfg,
                                         const opt::PipelineSpec &Pipeline);

} // namespace

Expected<CompiledKernel> compileKernel(const KernelSpec &Spec,
                                       const CompileOptions &Options,
                                       const vgpu::NativeRegistry &Registry) {
  // The effective pipeline configuration: debug builds keep the assumptions
  // alive so the virtual GPU verifies them at run time (Section III-G).
  opt::OptOptions OptCfg = Options.Opt;
  if (Options.CG.DebugKind != 0)
    OptCfg.KeepAssumes = true;
  // Resolve the pipeline up front: an invalid Options.Opt.Pipeline string is
  // a compile error, and the canonical spec text is part of the cache key.
  std::string PipelineStr;
  opt::PipelineSpec Pipeline;
  if (Options.RunOptimizer) {
    auto Resolved = opt::resolvePipelineSpec(OptCfg);
    if (!Resolved)
      return makeError("invalid pipeline specification: ",
                       Resolved.error().message());
    Pipeline = Resolved.takeValue();
    PipelineStr = Pipeline.str();
  }
  // Observation (remarks, pass callbacks) sees the pipeline as a side
  // effect, so such requests must actually compile.
  const bool Cacheable = Options.UseKernelCache && !Options.Opt.observed();
  trace::Tracer &Tracer = trace::Tracer::global();
  if (!Cacheable) {
    if (Tracer.enabled())
      Tracer.instant("frontend", "kernel-cache.bypass");
    return compileUncached(Spec, Options, Registry, OptCfg, Pipeline);
  }
  // Single-flight through the sharded cache: when many threads request the
  // same key concurrently (the service's compile storms), exactly one runs
  // compileUncached and the rest share its result.
  const std::string Key = KernelCache::key(Spec, Options, Registry,
                                           PipelineStr);
  KernelCache::Outcome Outcome = KernelCache::Outcome::Miss;
  auto Result = KernelCache::global().getOrCompile(
      Key,
      [&] {
        auto Compiled =
            compileUncached(Spec, Options, Registry, OptCfg, Pipeline);
        // Stamp the content key on the module before the cache publishes
        // it: execution backends (the native backend's shared-object cache)
        // memoize per-module work keyed on it instead of re-hashing IR.
        // Stamping inside the single-flight compile keeps the write
        // pre-publication, so concurrent readers never observe a mutation.
        if (Compiled)
          Compiled->M->setCacheKey(Key);
        return Compiled;
      },
      &Outcome);
  if (!Result)
    return Result;
  if (Outcome != KernelCache::Outcome::Miss) {
    // The stored timing belongs to the compile that populated the entry;
    // this request paid only the lookup (or the coalesced wait).
    Result->Timing = CompilePhaseTiming{};
    Result->Timing.CacheHit = true;
  }
  if (Tracer.enabled())
    Tracer.instant("frontend",
                   Outcome == KernelCache::Outcome::Hit ? "kernel-cache.hit"
                   : Outcome == KernelCache::Outcome::Coalesced
                       ? "kernel-cache.coalesced"
                       : "kernel-cache.miss");
  return Result;
}

namespace {

Expected<CompiledKernel> compileUncached(const KernelSpec &Spec,
                                         const CompileOptions &Options,
                                         const vgpu::NativeRegistry &Registry,
                                         const opt::OptOptions &OptCfg,
                                         const opt::PipelineSpec &Pipeline) {
  CompilePhaseTiming Timing;
  PhaseClock Clock;
  auto CG = emitKernel(Spec, Options.CG);
  if (!CG)
    return CG.error();
  Timing.CodegenMicros = Clock.lap("codegen");
  auto Linked = linkRuntime(*CG->AppModule, Options.CG.RT);
  if (!Linked)
    return Linked.error();
  Timing.LinkMicros = Clock.lap("link");
  {
    auto Errors = ir::verifyModule(*CG->AppModule);
    if (!Errors.empty())
      return makeError("post-link verification failed: ", Errors.front());
  }
  Timing.VerifyMicros += Clock.lap("verify");
  if (Options.RunOptimizer) {
    auto PM = opt::PassManager::create(Pipeline);
    if (!PM)
      return makeError("invalid pipeline specification: ",
                       PM.error().message());
    PM->run(*CG->AppModule, OptCfg);
    Timing.OptMicros = Clock.lap("opt");
    auto Errors = ir::verifyModule(*CG->AppModule);
    if (!Errors.empty())
      return makeError("post-optimization verification failed: ",
                       Errors.front());
    Timing.VerifyMicros += Clock.lap("verify");
  }
  {
    // Static map inference runs after the pipeline — inlining and load
    // forwarding have made pointer-argument usage directly visible — and
    // annotates the kernel Function only (no IR mutation, so it is NOT part
    // of the pipeline string and committed bench baselines are unaffected).
    // The host runtime's pipeline planner reads the annotations to hoist
    // transfers; the map lint rules check declared clauses against them.
    opt::AnalysisManager AM(*CG->AppModule);
    opt::inferModuleMaps(*CG->AppModule, AM, OptCfg);
    Timing.OptMicros += Clock.lap("infer-maps");
  }
  CompiledKernel Out;
  Out.Kernel = CG->Kernel;
  Out.M = std::move(CG->AppModule);
  Out.Stats = vgpu::computeKernelStats(*Out.Kernel, Registry);
  // Lower to bytecode while the verified module is at hand; the lowering
  // is immutable and shared by every image (and by cache hits below).
  Out.Bytecode = vgpu::BytecodeEmitter::lower(*Out.M);
  Timing.StatsMicros = Clock.lap("stats");
  Out.Timing = Timing;
  return Out;
}

} // namespace

} // namespace codesign::frontend
