#include "frontend/Driver.hpp"

#include "ir/Linker.hpp"
#include "rt/DeviceRTL.hpp"
#ifdef CODESIGN_HAS_OLDRT
#include "oldrt/OldDeviceRTL.hpp"
#endif

namespace codesign::frontend {

bool hasOldRT() {
#ifdef CODESIGN_HAS_OLDRT
  return true;
#else
  return false;
#endif
}

Expected<bool> linkRuntime(ir::Module &AppModule, RuntimeKind Kind) {
  switch (Kind) {
  case RuntimeKind::Native:
    return true;
  case RuntimeKind::NewRT: {
    auto RTL = rt::buildDeviceRTL();
    return ir::linkModules(AppModule, *RTL);
  }
  case RuntimeKind::OldRT: {
#ifdef CODESIGN_HAS_OLDRT
    auto RTL = oldrt::buildOldDeviceRTL();
    return ir::linkModules(AppModule, *RTL);
#else
    return makeError(
        "the legacy old-runtime baseline is not part of this build; "
        "configure with -DCODESIGN_BUILD_OLDRT=ON to compare against it");
#endif
  }
  }
  CODESIGN_UNREACHABLE("bad runtime kind");
}

} // namespace codesign::frontend
