#include "frontend/Driver.hpp"

#include "ir/Linker.hpp"
#include "oldrt/OldDeviceRTL.hpp"
#include "rt/DeviceRTL.hpp"

namespace codesign::frontend {

Expected<bool> linkRuntime(ir::Module &AppModule, RuntimeKind Kind) {
  switch (Kind) {
  case RuntimeKind::Native:
    return true;
  case RuntimeKind::NewRT: {
    auto RTL = rt::buildDeviceRTL();
    return ir::linkModules(AppModule, *RTL);
  }
  case RuntimeKind::OldRT: {
    auto RTL = oldrt::buildOldDeviceRTL();
    return ir::linkModules(AppModule, *RTL);
  }
  }
  CODESIGN_UNREACHABLE("bad runtime kind");
}

} // namespace codesign::frontend
