//===- frontend/KernelSpec.hpp - Directive-level kernel description --------===//
//
// The frontend's input language: a structured description of an OpenMP
// target region (directives, clauses, loop bodies) that stands in for the
// Clang AST. The same KernelSpec lowers through three paths:
//
//   * NewRT  — the co-designed runtime of Section III (this paper),
//   * OldRT  — the legacy runtime baseline,
//   * Native — hand-lowered CUDA-style code with no runtime at all.
//
// Numeric loop bodies are registered native operations (see
// vgpu::NativeRegistry); everything the paper's optimizations act on — the
// runtime calls, state, barriers, argument marshalling — is emitted as IR.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/Instruction.hpp"
#include "ir/MapKind.hpp"
#include "ir/Type.hpp"

namespace codesign::frontend {

/// One kernel parameter (a scalar or a device pointer). Pointer parameters
/// may carry a map(to/from/tofrom/alloc) clause; MapKind::None means no
/// explicit clause, whose implicit default for pointers is tofrom.
struct ParamSpec {
  ir::Type Ty;
  std::string Name;
  ir::MapKind Map = ir::MapKind::None;

  /// Clause-carrying pointer parameter: map(<M>: <Name>).
  static ParamSpec mappedPtr(std::string Name, ir::MapKind M) {
    return {ir::Type::ptr(), std::move(Name), M};
  }
};

/// Where a loop's trip count comes from. `LoadFromArgPtr` models the
/// GridMini/XSBench situation of Section VII: bounds loaded from memory
/// inside the region, whose side effect blocks barrier elimination — the
/// paper fixed GridMini by passing the bound by value (`Argument`).
struct TripCount {
  enum class Kind { Constant, Argument, LoadFromArgPtr };
  Kind K = Kind::Constant;
  std::int64_t Const = 0;   ///< Kind::Constant
  unsigned ArgIndex = 0;    ///< Argument / LoadFromArgPtr: which parameter
  std::int64_t Offset = 0;  ///< LoadFromArgPtr: byte offset of the i64 bound

  static TripCount constant(std::int64_t N) {
    return {Kind::Constant, N, 0, 0};
  }
  static TripCount argument(unsigned Idx) {
    return {Kind::Argument, 0, Idx, 0};
  }
  static TripCount loadFrom(unsigned Idx, std::int64_t Off) {
    return {Kind::LoadFromArgPtr, 0, Idx, Off};
  }
};

/// One argument forwarded to a native loop body.
struct BodyArg {
  enum class Kind {
    IterVar,    ///< the work-shared iteration variable (i64)
    KernelArg,  ///< kernel parameter #ArgIndex
    ThreadNum,  ///< omp_get_thread_num()
    NumThreads, ///< omp_get_num_threads()
    TeamNum,    ///< omp_get_team_num()
    NumTeams,   ///< omp_get_num_teams()
    Scratch,    ///< pointer to the per-team shared scratch block
    Constant,   ///< a literal i64
  };
  Kind K = Kind::IterVar;
  unsigned ArgIndex = 0;
  std::int64_t Const = 0;

  static BodyArg iter() { return {Kind::IterVar, 0, 0}; }
  static BodyArg arg(unsigned Idx) { return {Kind::KernelArg, Idx, 0}; }
  static BodyArg threadNum() { return {Kind::ThreadNum, 0, 0}; }
  static BodyArg numThreads() { return {Kind::NumThreads, 0, 0}; }
  static BodyArg teamNum() { return {Kind::TeamNum, 0, 0}; }
  static BodyArg numTeams() { return {Kind::NumTeams, 0, 0}; }
  static BodyArg scratch() { return {Kind::Scratch, 0, 0}; }
  static BodyArg constant(std::int64_t C) { return {Kind::Constant, 0, C}; }
};

/// A call to a registered native operation.
struct NativeBody {
  std::int64_t NativeId = 0;
  std::vector<BodyArg> Args;
  ir::NativeOpFlags Flags;
};

/// Statement kinds inside a target region.
enum class StmtKind {
  Serial,               ///< executed once (by the region's initial thread)
  Parallel,             ///< #pragma omp parallel { children }
  For,                  ///< #pragma omp for (inside a parallel)
  DistributeParallelFor, ///< combined teams-level worksharing loop
  SetNumThreads,        ///< omp_set_num_threads(N) — ICV write
};

/// A node of the region tree. (A small closed variant; a class hierarchy
/// would be overkill for five shapes.)
struct Stmt {
  StmtKind K = StmtKind::Serial;
  NativeBody Body;              ///< Serial / For / DistributeParallelFor
  TripCount Trip;               ///< For / DistributeParallelFor
  std::vector<Stmt> Children;   ///< Parallel
  std::int32_t NumThreadsClause = 0; ///< Parallel: 0 = no clause
  std::uint64_t ScratchBytes = 0; ///< Parallel / DPF: per-team shared scratch
  std::int32_t IcvValue = 0;    ///< SetNumThreads
  bool HasDirectBody = false;   ///< Parallel: Body executed by each thread

  static Stmt serial(NativeBody B) {
    Stmt S;
    S.K = StmtKind::Serial;
    S.Body = std::move(B);
    return S;
  }
  static Stmt parallel(std::vector<Stmt> Children,
                       std::int32_t NumThreads = 0,
                       std::uint64_t ScratchBytes = 0) {
    Stmt S;
    S.K = StmtKind::Parallel;
    S.Children = std::move(Children);
    S.NumThreadsClause = NumThreads;
    S.ScratchBytes = ScratchBytes;
    return S;
  }
  /// A parallel region whose every thread directly executes Body (no
  /// worksharing): `#pragma omp parallel { work(); }`. Valid nested, where
  /// the runtime serializes it with an individual thread ICV state — the
  /// dynamic-task-parallelism proxy used by the MiniFMM port.
  static Stmt parallelWork(NativeBody Body, std::int32_t NumThreads = 0) {
    Stmt S;
    S.K = StmtKind::Parallel;
    S.Body = std::move(Body);
    S.HasDirectBody = true;
    S.NumThreadsClause = NumThreads;
    return S;
  }
  static Stmt forLoop(TripCount Trip, NativeBody B) {
    Stmt S;
    S.K = StmtKind::For;
    S.Trip = Trip;
    S.Body = std::move(B);
    return S;
  }
  static Stmt distributeParallelFor(TripCount Trip, NativeBody B,
                                    std::uint64_t ScratchBytes = 0) {
    Stmt S;
    S.K = StmtKind::DistributeParallelFor;
    S.Trip = Trip;
    S.Body = std::move(B);
    S.ScratchBytes = ScratchBytes;
    return S;
  }
  static Stmt setNumThreads(std::int32_t N) {
    Stmt S;
    S.K = StmtKind::SetNumThreads;
    S.IcvValue = N;
    return S;
  }
};

/// A whole target region.
struct KernelSpec {
  std::string Name;
  std::vector<ParamSpec> Params;
  std::vector<Stmt> Stmts;
};

/// True when the region is a single combined distribute-parallel-for (the
/// shape that lowers directly to SPMD mode, paper Section II-C).
bool isSpmdCompatible(const KernelSpec &Spec);

} // namespace codesign::frontend
