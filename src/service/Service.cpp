#include "service/Service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "frontend/TargetCompiler.hpp"
#include "support/Trace.hpp"

namespace codesign::service {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Service::Service(vgpu::VirtualGPU &Device, ServiceConfig Config)
    : Device(Device), Config(Config), Host(Device),
      Pool(std::max(1u, Config.Workers)) {
  this->Config.Workers = std::max(1u, Config.Workers);
  this->Config.QueueCapacity = std::max<std::size_t>(1, Config.QueueCapacity);
  // The runner thread turns the fork-join pool into a service worker pool:
  // parallelFor hands each index of [0, Workers) to a distinct thread (the
  // runner itself claims one), and every index runs the drain loop until
  // shutdown flips Stopping.
  Runner = std::thread([this] {
    Pool.parallelFor(this->Config.Workers,
                     [this](std::uint64_t) { workerLoop(); });
  });
}

Service::~Service() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(QMutex);
    Stopping = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  Runner.join();
}

void Service::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QMutex);
      NotEmpty.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, nothing left to do
      J = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
      NotFull.notify_one();
    }
    {
      // Everything the request does — compile traces, launch traces — is
      // stamped with its tenant for per-tenant trace isolation.
      trace::TenantScope Scope(J.Tenant);
      const std::uint64_t Start = nowMicros();
      J.Run();
      trace::Tracer::global().span("service", "request",
                                   nowMicros() - Start, {{"req", J.Id}});
    }
    {
      std::lock_guard<std::mutex> Lock(QMutex);
      --ActiveJobs;
      if (Queue.empty() && ActiveJobs == 0)
        Idle.notify_all();
    }
  }
}

Expected<std::uint64_t> Service::enqueue(const std::string &Tenant,
                                         std::function<void()> Run) {
  const std::uint64_t Id =
      NextRequestId.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> Lock(QMutex);
    if (Queue.size() >= Config.QueueCapacity) {
      if (Config.Policy == AdmissionPolicy::Reject || Stopping) {
        ++TotalRejected;
        withTenant(Tenant, [](TenantState &T) { ++T.Stats.Rejected; });
        return makeError("service: queue full (capacity ",
                         std::to_string(Config.QueueCapacity),
                         "): request rejected by admission control");
      }
      NotFull.wait(Lock, [this] {
        return Queue.size() < Config.QueueCapacity || Stopping;
      });
    }
    if (Stopping) {
      ++TotalRejected;
      withTenant(Tenant, [](TenantState &T) { ++T.Stats.Rejected; });
      return makeError("service: shutting down, request rejected");
    }
    Queue.push_back(Job{Tenant, Id, std::move(Run)});
    ++TotalEnqueued;
    DepthSum += Queue.size();
    if (Queue.size() > PeakDepth)
      PeakDepth = Queue.size();
  }
  withTenant(Tenant, [](TenantState &T) { ++T.Stats.Submitted; });
  NotEmpty.notify_one();
  return Id;
}

void Service::finishTenant(const std::string &Tenant, bool Ok) {
  withTenant(Tenant, [Ok](TenantState &T) {
    if (Ok)
      ++T.Stats.Completed;
    else
      ++T.Stats.Failed;
  });
}

Expected<void> Service::registerCompiled(const frontend::CompiledKernel &CK) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  const std::string &Name = CK.Kernel->name();
  if (auto It = BoundKernels.find(Name); It != BoundKernels.end()) {
    // The single-flight cache hands every identical compile the same
    // module, so a repeat binding of that module is the expected steady
    // state, not a conflict.
    if (It->second == CK.M.get())
      return {};
    return makeError("service: kernel '", Name,
                     "' is already registered from a different module");
  }
  if (auto Out = Host.registerImage(*CK.M, CK.Bytecode); !Out)
    return Out;
  BoundKernels.emplace(Name, CK.M.get());
  OwnedModules.push_back(CK.M);
  return {};
}

Expected<Ticket<void>>
Service::submitRegister(std::string Tenant, std::shared_ptr<ir::Module> M,
                        std::shared_ptr<const vgpu::BytecodeModule> Bytecode) {
  if (!M)
    return makeError("service: submitRegister requires a module");
  auto Promise = std::make_shared<std::promise<Expected<void>>>();
  auto Fut = Promise->get_future();
  auto Out = enqueue(Tenant, [this, Tenant, M = std::move(M),
                              Bytecode = std::move(Bytecode), Promise] {
    Expected<void> R = [&]() -> Expected<void> {
      std::lock_guard<std::mutex> Lock(RegMutex);
      if (auto Reg = Host.registerImage(*M, Bytecode); !Reg)
        return Reg;
      for (const auto &F : M->functions())
        if (F->hasAttr(ir::FnAttr::Kernel))
          BoundKernels.emplace(F->name(), M.get());
      OwnedModules.push_back(M);
      return {};
    }();
    finishTenant(Tenant, R.hasValue());
    Promise->set_value(std::move(R));
  });
  if (!Out)
    return Out.error();
  return Ticket<void>(*Out, std::move(Fut));
}

Expected<Ticket<frontend::CompiledKernel>>
Service::submitCompile(std::string Tenant, frontend::KernelSpec Spec,
                       frontend::CompileOptions Options) {
  auto Promise =
      std::make_shared<std::promise<Expected<frontend::CompiledKernel>>>();
  auto Fut = Promise->get_future();
  auto SpecPtr = std::make_shared<frontend::KernelSpec>(std::move(Spec));
  auto OptPtr = std::make_shared<frontend::CompileOptions>(std::move(Options));
  auto Out = enqueue(Tenant, [this, Tenant, SpecPtr, OptPtr, Promise] {
    auto R = frontend::compileKernel(*SpecPtr, *OptPtr, Device.registry());
    if (R) {
      withTenant(Tenant, [&](TenantState &T) {
        ++T.Stats.Compiles;
        if (R->Timing.CacheHit)
          ++T.Stats.CompileCacheHits;
      });
      if (auto Reg = registerCompiled(*R); !Reg) {
        finishTenant(Tenant, false);
        Promise->set_value(Reg.error());
        return;
      }
    }
    finishTenant(Tenant, R.hasValue());
    Promise->set_value(std::move(R));
  });
  if (!Out)
    return Out.error();
  return Ticket<frontend::CompiledKernel>(*Out, std::move(Fut));
}

Expected<Ticket<vgpu::LaunchResult>>
Service::submitLaunch(host::LaunchRequest Request) {
  // Reject malformed requests at submission, before they consume a queue
  // slot: the client gets the error synchronously.
  if (auto Valid = Request.validate(); !Valid)
    return Valid.error();
  auto Promise = std::make_shared<std::promise<Expected<vgpu::LaunchResult>>>();
  auto Fut = Promise->get_future();
  const std::string Tenant = Request.Tenant;
  auto ReqPtr = std::make_shared<host::LaunchRequest>(std::move(Request));
  auto Out = enqueue(Tenant, [this, Tenant, ReqPtr, Promise] {
    const std::uint64_t Start = nowMicros();
    auto R = Host.launch(*ReqPtr);
    const double WallMicros = static_cast<double>(nowMicros() - Start);
    const bool Ok = R.hasValue() && R->Ok;
    withTenant(Tenant, [&](TenantState &T) {
      if (Ok) {
        ++T.Stats.Launches;
        T.Stats.LaunchWallMicros.add(WallMicros);
        if (R->Profile.Collected) {
          T.LastProfile = R->Profile;
          T.HasProfile = true;
        }
      }
    });
    finishTenant(Tenant, Ok);
    Promise->set_value(std::move(R));
  });
  if (!Out)
    return Out.error();
  return Ticket<vgpu::LaunchResult>(*Out, std::move(Fut));
}

Expected<vgpu::LaunchProfile> Service::lastProfile(std::string_view Tenant) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Tenant);
  if (It == Tenants.end() || !It->second.HasProfile)
    return makeError("service: tenant '", std::string(Tenant),
                     "' has no profiled launch (enable profiling with "
                     "VirtualGPU::setProfiling)");
  return It->second.LastProfile;
}

TenantStats Service::tenantStats(std::string_view Tenant) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? TenantStats{} : It->second.Stats;
}

std::vector<std::string> Service::tenants() const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  std::vector<std::string> Out;
  Out.reserve(Tenants.size());
  for (const auto &[Name, State] : Tenants)
    Out.push_back(Name);
  return Out;
}

QueueStats Service::queueStats() const {
  std::lock_guard<std::mutex> Lock(QMutex);
  QueueStats S;
  S.Depth = Queue.size();
  S.Peak = PeakDepth;
  S.Enqueued = TotalEnqueued;
  S.Rejected = TotalRejected;
  S.MeanDepth = TotalEnqueued
                    ? static_cast<double>(DepthSum) /
                          static_cast<double>(TotalEnqueued)
                    : 0.0;
  return S;
}

void Service::drain() {
  std::unique_lock<std::mutex> Lock(QMutex);
  Idle.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

} // namespace codesign::service
