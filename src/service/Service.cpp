#include "service/Service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "frontend/TargetCompiler.hpp"
#include "support/Trace.hpp"

namespace codesign::service {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Service::Service(vgpu::VirtualGPU &Device, ServiceConfig Config)
    : Device(Device), Config(Config), Host(Device),
      Pool(std::max(1u, Config.Workers)) {
  this->Config.Workers = std::max(1u, Config.Workers);
  this->Config.QueueCapacity = std::max<std::size_t>(1, Config.QueueCapacity);
  // The runner thread turns the fork-join pool into a service worker pool:
  // parallelFor hands each index of [0, Workers) to a distinct thread (the
  // runner itself claims one), and every index runs the drain loop until
  // shutdown flips Stopping.
  Runner = std::thread([this] {
    Pool.parallelFor(this->Config.Workers,
                     [this](std::uint64_t) { workerLoop(); });
  });
}

Service::~Service() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(QMutex);
    Stopping = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  Runner.join();
}

void Service::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QMutex);
      NotEmpty.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, nothing left to do
      J = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
      NotFull.notify_one();
    }
    {
      // Everything the request does — compile traces, launch traces — is
      // stamped with its tenant for per-tenant trace isolation.
      trace::TenantScope Scope(J.Tenant);
      const std::uint64_t Start = nowMicros();
      J.Run();
      trace::Tracer::global().span("service", "request",
                                   nowMicros() - Start, {{"req", J.Id}});
      // Only now may the client learn the outcome: publishing after the
      // span guarantees a client woken by its ticket sees the request's
      // trace events.
      if (J.Publish)
        J.Publish();
    }
    {
      std::lock_guard<std::mutex> Lock(QMutex);
      --ActiveJobs;
      if (Queue.empty() && ActiveJobs == 0)
        Idle.notify_all();
    }
  }
}

Expected<std::uint64_t> Service::enqueue(const std::string &Tenant,
                                         std::function<void()> Run,
                                         std::function<void()> Publish) {
  const std::uint64_t Id =
      NextRequestId.fetch_add(1, std::memory_order_relaxed);
  // Tenant stats are recorded after QMutex is dropped: withTenant takes
  // TenantsMutex, and nesting it under QMutex would order the two locks —
  // any future path taking them the other way around would deadlock. An
  // attempt resolves to exactly one outcome (Submitted xor Rejected), and
  // when enqueue rejects, no job was queued, so no future will ever be
  // fulfilled for this attempt: accounting and completion cannot both
  // happen for one request.
  Expected<void> Admitted = [&]() -> Expected<void> {
    std::unique_lock<std::mutex> Lock(QMutex);
    if (Queue.size() >= Config.QueueCapacity) {
      if (Config.Policy == AdmissionPolicy::Reject || Stopping) {
        ++TotalRejected;
        return makeError("service: queue full (capacity ",
                         std::to_string(Config.QueueCapacity),
                         "): request rejected by admission control");
      }
      NotFull.wait(Lock, [this] {
        return Queue.size() < Config.QueueCapacity || Stopping;
      });
    }
    if (Stopping) {
      ++TotalRejected;
      return makeError("service: shutting down, request rejected");
    }
    Queue.push_back(Job{Tenant, Id, std::move(Run), std::move(Publish)});
    ++TotalEnqueued;
    DepthSum += Queue.size();
    if (Queue.size() > PeakDepth)
      PeakDepth = Queue.size();
    return {};
  }();
  if (!Admitted) {
    withTenant(Tenant, [](TenantState &T) { ++T.Stats.Rejected; });
    return Admitted.error();
  }
  withTenant(Tenant, [](TenantState &T) { ++T.Stats.Submitted; });
  NotEmpty.notify_one();
  return Id;
}

void Service::finishTenant(const std::string &Tenant, bool Ok) {
  withTenant(Tenant, [Ok](TenantState &T) {
    if (Ok)
      ++T.Stats.Completed;
    else
      ++T.Stats.Failed;
  });
}

Expected<void> Service::registerCompiled(const frontend::CompiledKernel &CK) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  const std::string &Name = CK.Kernel->name();
  if (auto It = BoundKernels.find(Name); It != BoundKernels.end()) {
    // The single-flight cache hands every identical compile the same
    // module, so a repeat binding of that module is the expected steady
    // state, not a conflict.
    if (It->second == CK.M.get())
      return {};
    return makeError("service: kernel '", Name,
                     "' is already registered from a different module");
  }
  if (auto Out = Host.registerImage(*CK.M, CK.Bytecode); !Out)
    return Out;
  BoundKernels.emplace(Name, CK.M.get());
  OwnedModules.push_back(CK.M);
  return {};
}

Expected<Ticket<void>>
Service::submitRegister(std::string Tenant, std::shared_ptr<ir::Module> M,
                        std::shared_ptr<const vgpu::BytecodeModule> Bytecode) {
  if (!M)
    return makeError("service: submitRegister requires a module");
  auto Promise = std::make_shared<std::promise<Expected<void>>>();
  auto Fut = Promise->get_future();
  auto Slot = std::make_shared<std::optional<Expected<void>>>();
  auto Out = enqueue(
      Tenant,
      [this, Tenant, M = std::move(M), Bytecode = std::move(Bytecode), Slot] {
        Expected<void> R = [&]() -> Expected<void> {
          std::lock_guard<std::mutex> Lock(RegMutex);
          if (auto Reg = Host.registerImage(*M, Bytecode); !Reg)
            return Reg;
          for (const auto &F : M->functions())
            if (F->hasAttr(ir::FnAttr::Kernel))
              BoundKernels.emplace(F->name(), M.get());
          OwnedModules.push_back(M);
          return {};
        }();
        finishTenant(Tenant, R.hasValue());
        *Slot = std::move(R);
      },
      [Promise, Slot] { Promise->set_value(std::move(**Slot)); });
  if (!Out)
    return Out.error();
  return Ticket<void>(*Out, std::move(Fut));
}

Expected<Ticket<frontend::CompiledKernel>>
Service::submitCompile(std::string Tenant, frontend::KernelSpec Spec,
                       frontend::CompileOptions Options) {
  auto Promise =
      std::make_shared<std::promise<Expected<frontend::CompiledKernel>>>();
  auto Fut = Promise->get_future();
  auto SpecPtr = std::make_shared<frontend::KernelSpec>(std::move(Spec));
  auto OptPtr = std::make_shared<frontend::CompileOptions>(std::move(Options));
  auto Slot =
      std::make_shared<std::optional<Expected<frontend::CompiledKernel>>>();
  auto Out = enqueue(
      Tenant,
      [this, Tenant, SpecPtr, OptPtr, Slot] {
        auto R = frontend::compileKernel(*SpecPtr, *OptPtr, Device.registry());
        if (R) {
          withTenant(Tenant, [&](TenantState &T) {
            ++T.Stats.Compiles;
            if (R->Timing.CacheHit)
              ++T.Stats.CompileCacheHits;
          });
          if (auto Reg = registerCompiled(*R); !Reg) {
            finishTenant(Tenant, false);
            *Slot = Reg.error();
            return;
          }
        }
        finishTenant(Tenant, R.hasValue());
        *Slot = std::move(R);
      },
      [Promise, Slot] { Promise->set_value(std::move(**Slot)); });
  if (!Out)
    return Out.error();
  return Ticket<frontend::CompiledKernel>(*Out, std::move(Fut));
}

Expected<Ticket<vgpu::LaunchResult>>
Service::submitLaunch(host::LaunchRequest Request) {
  // Reject malformed requests at submission, before they consume a queue
  // slot: the client gets the error synchronously.
  if (auto Valid = Request.validate(); !Valid)
    return Valid.error();
  auto Promise = std::make_shared<std::promise<Expected<vgpu::LaunchResult>>>();
  auto Fut = Promise->get_future();
  const std::string Tenant = Request.Tenant;
  auto ReqPtr = std::make_shared<host::LaunchRequest>(std::move(Request));
  auto Slot = std::make_shared<std::optional<Expected<vgpu::LaunchResult>>>();
  auto Out = enqueue(
      Tenant,
      [this, Tenant, ReqPtr, Slot] {
        const std::uint64_t Start = nowMicros();
        auto R = Host.launch(*ReqPtr);
        const double WallMicros = static_cast<double>(nowMicros() - Start);
        const bool Ok = R.hasValue() && R->Ok;
        withTenant(Tenant, [&](TenantState &T) {
          if (Ok) {
            ++T.Stats.Launches;
            T.Stats.LaunchWallMicros.add(WallMicros);
            if (R->Profile.Collected) {
              T.LastProfile = R->Profile;
              T.HasProfile = true;
            }
          }
        });
        finishTenant(Tenant, Ok);
        *Slot = std::move(R);
      },
      [Promise, Slot] { Promise->set_value(std::move(**Slot)); });
  if (!Out)
    return Out.error();
  return Ticket<vgpu::LaunchResult>(*Out, std::move(Fut));
}

namespace {

/// The motion clause that governs one Buffer argument of one launch: the
/// request's explicit clause wins, then the kernel's declared clause, then
/// the statically inferred one; a pointer with no information at all gets
/// the OpenMP implicit default, tofrom.
ir::MapKind effectiveMap(const host::KernelArg &A, const ir::Function *K,
                         unsigned ArgIdx) {
  if (A.Map != ir::MapKind::None)
    return A.Map;
  if (K) {
    if (K->argMap(ArgIdx) != ir::MapKind::None)
      return K->argMap(ArgIdx);
    if (K->inferredArgMap(ArgIdx) != ir::MapKind::None)
      return K->inferredArgMap(ArgIdx);
  }
  return ir::MapKind::ToFrom;
}

} // namespace

Expected<Ticket<PipelineResult>>
Service::submitPipeline(std::string Tenant,
                        std::vector<host::LaunchRequest> Requests) {
  if (Requests.empty())
    return makeError("service: submitPipeline requires at least one launch");
  for (std::size_t I = 0; I < Requests.size(); ++I)
    if (auto Valid = Requests[I].validate(); !Valid)
      return makeError("service: pipeline launch #", std::to_string(I), ": ",
                       Valid.error().message());
  auto Promise = std::make_shared<std::promise<Expected<PipelineResult>>>();
  auto Fut = Promise->get_future();
  auto Reqs = std::make_shared<std::vector<host::LaunchRequest>>(
      std::move(Requests));
  auto Slot = std::make_shared<std::optional<Expected<PipelineResult>>>();
  auto Out = enqueue(
      Tenant,
      [this, Tenant, Reqs, Slot] {
    auto R = [&]() -> Expected<PipelineResult> {
      // Plan residency: one entry per distinct buffer pointer, its motion
      // needs OR-ed over every launch that names it.
      struct BufPlan {
        void *Ptr = nullptr;
        std::uint64_t Bytes = 0;
        bool NeedTo = false;
        bool NeedFrom = false;
      };
      std::vector<BufPlan> Plan;
      std::map<const void *, std::size_t> Index;
      for (const host::LaunchRequest &Req : *Reqs) {
        const ir::Function *K = Host.findKernel(Req.Kernel);
        for (std::size_t A = 0; A < Req.Args.size(); ++A) {
          const host::KernelArg &Arg = Req.Args[A];
          if (Arg.K != host::KernelArg::Kind::Buffer)
            continue;
          const ir::MapKind M =
              effectiveMap(Arg, K, static_cast<unsigned>(A));
          auto [It, Fresh] = Index.try_emplace(Arg.HostPtr, Plan.size());
          if (Fresh)
            Plan.push_back(
                BufPlan{const_cast<void *>(Arg.HostPtr), Arg.Bytes});
          BufPlan &B = Plan[It->second];
          if (B.Bytes != Arg.Bytes)
            return makeError("service: pipeline maps one buffer with two "
                             "sizes (",
                             std::to_string(B.Bytes), " vs ",
                             std::to_string(Arg.Bytes), " bytes)");
          B.NeedTo |= ir::mapCopiesTo(M);
          B.NeedFrom |= ir::mapCopiesFrom(M);
        }
      }
      PipelineResult Res;
      Res.HoistedBuffers = Plan.size();
      // Prologue: make every buffer resident. To-motion only for buffers
      // some launch actually reads.
      for (std::size_t I = 0; I < Plan.size(); ++I) {
        auto Addr = Host.enterData(Plan[I].Ptr, Plan[I].Bytes,
                                   /*CopyTo=*/Plan[I].NeedTo,
                                   &Res.Transfers);
        if (!Addr) {
          for (std::size_t J = I; J-- > 0;)
            (void)Host.exitData(Plan[J].Ptr, /*CopyFrom=*/false,
                                &Res.Transfers);
          return makeError("service: pipeline could not map a buffer: ",
                           Addr.error().message());
        }
      }
      // Launches run in order; each one's buffer maps are refcount bumps.
      bool AllOk = true;
      std::string FirstError;
      for (const host::LaunchRequest &Req : *Reqs) {
        auto LR = Host.launch(Req);
        if (!LR) {
          AllOk = false;
          FirstError = LR.error().message();
          break;
        }
        Res.Transfers.accumulate(host::TransferStats{
            LR->Profile.TransfersToDevice, LR->Profile.TransfersFromDevice,
            LR->Profile.BytesToDevice, LR->Profile.BytesFromDevice,
            LR->Profile.TransferCycles});
        const bool Ok = LR->Ok;
        Res.Launches.push_back(std::move(*LR));
        if (!Ok) {
          AllOk = false;
          FirstError = Res.Launches.back().Error;
          break;
        }
        withTenant(Tenant, [](TenantState &T) { ++T.Stats.Launches; });
      }
      // Epilogue: release residency. From-motion only when the whole
      // pipeline succeeded — partial outputs stay on the device side.
      for (std::size_t J = Plan.size(); J-- > 0;)
        (void)Host.exitData(Plan[J].Ptr,
                            /*CopyFrom=*/AllOk && Plan[J].NeedFrom,
                            &Res.Transfers);
      if (!AllOk)
        return makeError("service: pipeline launch failed: ", FirstError);
      Counters::global().add("service.pipeline.jobs");
      Counters::global().add("service.pipeline.hoisted_buffers",
                             Res.HoistedBuffers);
      return Res;
    }();
    finishTenant(Tenant, R.hasValue());
    *Slot = std::move(R);
      },
      [Promise, Slot] { Promise->set_value(std::move(**Slot)); });
  if (!Out)
    return Out.error();
  return Ticket<PipelineResult>(*Out, std::move(Fut));
}

Expected<vgpu::LaunchProfile> Service::lastProfile(std::string_view Tenant) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Tenant);
  if (It == Tenants.end() || !It->second.HasProfile)
    return makeError("service: tenant '", std::string(Tenant),
                     "' has no profiled launch (enable profiling with "
                     "VirtualGPU::setProfiling)");
  return It->second.LastProfile;
}

TenantStats Service::tenantStats(std::string_view Tenant) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? TenantStats{} : It->second.Stats;
}

std::vector<std::string> Service::tenants() const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  std::vector<std::string> Out;
  Out.reserve(Tenants.size());
  for (const auto &[Name, State] : Tenants)
    Out.push_back(Name);
  return Out;
}

QueueStats Service::queueStats() const {
  std::lock_guard<std::mutex> Lock(QMutex);
  QueueStats S;
  S.Depth = Queue.size();
  S.Peak = PeakDepth;
  S.Enqueued = TotalEnqueued;
  S.Rejected = TotalRejected;
  S.MeanDepth = TotalEnqueued
                    ? static_cast<double>(DepthSum) /
                          static_cast<double>(TotalEnqueued)
                    : 0.0;
  return S;
}

void Service::drain() {
  std::unique_lock<std::mutex> Lock(QMutex);
  Idle.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

} // namespace codesign::service
