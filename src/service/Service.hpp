//===- service/Service.hpp - Multi-tenant compile-and-launch service -------===//
//
// The "millions of users" path (ROADMAP item 2): an asynchronous service
// over the library stack that accepts concurrent requests from many client
// threads — register an image, compile a kernel with options, launch with
// arguments, fetch per-tenant profiles — through one bounded submission
// queue drained by a pool of workers.
//
//   * Futures: every submit returns a Ticket (future) for the request's
//     Expected outcome; clients overlap submission freely.
//   * Queueing: the queue is backed by the support::ThreadPool — the
//     service's worker slots are one parallelFor index space swept by the
//     pool, each slot draining jobs until shutdown.
//   * Admission control: the queue is bounded; when full, submissions
//     either block for space or are rejected with an error, per
//     ServiceConfig::Policy (backpressure instead of unbounded memory).
//   * Deduplication: compiles funnel through the sharded single-flight
//     KernelCache, so 1000 identical concurrent compile requests perform
//     exactly one compilation (KernelCache::Stats proves it).
//   * Tenant isolation: stats (request counts, launch latency, cache hits)
//     and trace events (trace::TenantScope) are segregated by the tenant
//     tag every request carries.
//
// Launches marshal through the same validated host::LaunchRequest as the
// synchronous library path — Service::submitLaunch and HostRuntime::launch
// share one entry point, not parallel signatures.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "frontend/KernelCache.hpp"
#include "host/HostRuntime.hpp"
#include "service/Ticket.hpp"
#include "support/Stats.hpp"
#include "support/ThreadPool.hpp"

namespace codesign::service {

/// What happens to a submission when the queue is at capacity.
enum class AdmissionPolicy {
  Block,  ///< wait for space (backpressure propagates to the client)
  Reject, ///< fail fast with a "queue full" error
};

/// Service shape: worker parallelism and admission control.
struct ServiceConfig {
  /// Worker slots draining the queue (clamped to >= 1).
  unsigned Workers = 4;
  /// Maximum queued (not yet executing) requests.
  std::size_t QueueCapacity = 64;
  AdmissionPolicy Policy = AdmissionPolicy::Block;
};

/// Per-tenant request accounting. Counts are lifetime totals for this
/// service instance.
struct TenantStats {
  std::uint64_t Submitted = 0;  ///< accepted into the queue
  std::uint64_t Rejected = 0;   ///< refused by admission control
  std::uint64_t Completed = 0;  ///< finished with a success outcome
  std::uint64_t Failed = 0;     ///< finished with an error outcome
  std::uint64_t Compiles = 0;   ///< compile requests executed
  std::uint64_t CompileCacheHits = 0; ///< compiles served from the cache
  std::uint64_t Launches = 0;   ///< successful kernel launches
  StreamingStats LaunchWallMicros; ///< wall time of the launch itself
};

/// Outcome of a hoisted multi-launch pipeline (submitPipeline): the
/// per-launch results in submission order, the transfers the pipeline
/// performed end to end (prologue maps, epilogue unmaps, and whatever the
/// launches themselves moved), and the number of distinct buffers hoisted
/// to device residency across the launches.
struct PipelineResult {
  std::vector<vgpu::LaunchResult> Launches;
  host::TransferStats Transfers;
  std::uint64_t HoistedBuffers = 0;
};

/// Submission-queue health, for benches and capacity planning.
struct QueueStats {
  std::size_t Depth = 0;      ///< current queued requests
  std::uint64_t Peak = 0;     ///< high-water mark
  std::uint64_t Enqueued = 0; ///< total accepted
  std::uint64_t Rejected = 0; ///< total refused (all tenants)
  double MeanDepth = 0.0;     ///< mean depth sampled at each enqueue
};

/// Asynchronous multi-tenant facade over VirtualGPU + HostRuntime +
/// compileKernel. Construct with the device; submit from any thread.
/// Destruction drains the queue (every accepted request completes).
class Service {
public:
  explicit Service(vgpu::VirtualGPU &Device, ServiceConfig Config = {});
  ~Service();
  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  // --- Request submission (thread-safe) ------------------------------------

  /// Register a pre-compiled module's kernels for launching. The service
  /// shares ownership of M until destruction.
  Expected<Ticket<void>>
  submitRegister(std::string Tenant, std::shared_ptr<ir::Module> M,
                 std::shared_ptr<const vgpu::BytecodeModule> Bytecode = nullptr);

  /// Compile Spec under Options (through the single-flight sharded kernel
  /// cache) and make the kernel launchable by name. Identical concurrent
  /// requests — same spec, same options — share one compilation and one
  /// registered image, whichever tenants submitted them.
  Expected<Ticket<frontend::CompiledKernel>>
  submitCompile(std::string Tenant, frontend::KernelSpec Spec,
                frontend::CompileOptions Options);

  /// Launch a registered kernel. The request's Tenant tag attributes the
  /// launch; marshalling and validation are HostRuntime::launch's.
  Expected<Ticket<vgpu::LaunchResult>> submitLaunch(host::LaunchRequest Request);

  /// Run a sequence of launches as one job with transfer hoisting: every
  /// Buffer argument appearing in the requests is mapped once before the
  /// first launch and unmapped once after the last, so the per-launch maps
  /// inside degrade to refcount bumps that move no bytes. The motion each
  /// buffer actually needs (to / from / neither) is the union over the
  /// launches that touch it of the per-argument effective map clause —
  /// the request's explicit clause when given, else the kernel's declared
  /// clause, else the clause the static map-inference pass proved, else
  /// the conservative implicit tofrom. From-motion is skipped when any
  /// launch failed (partial outputs are not written back).
  Expected<Ticket<PipelineResult>>
  submitPipeline(std::string Tenant,
                 std::vector<host::LaunchRequest> Requests);

  // --- Tenant-scoped results (thread-safe) ---------------------------------

  /// The tenant's most recent successful launch profile. Errors when the
  /// tenant never completed a profiled launch (enable profiling on the
  /// device with VirtualGPU::setProfiling).
  Expected<vgpu::LaunchProfile> lastProfile(std::string_view Tenant) const;

  /// Snapshot of the tenant's stats (zeroes for unknown tenants).
  [[nodiscard]] TenantStats tenantStats(std::string_view Tenant) const;

  /// Names of every tenant that submitted at least one request.
  [[nodiscard]] std::vector<std::string> tenants() const;

  // --- Service-wide introspection ------------------------------------------

  [[nodiscard]] QueueStats queueStats() const;

  /// Block until every accepted request has completed and the queue is
  /// empty. New submissions during a drain are allowed (the drain then
  /// also waits for them).
  void drain();

  /// The underlying host runtime, for data mapping (enterData/exitData) —
  /// the present table is thread-safe and shared by all tenants.
  [[nodiscard]] host::HostRuntime &runtime() { return Host; }

private:
  struct Job {
    std::string Tenant;
    std::uint64_t Id = 0;
    /// Does the work and records its outcome (tenant stats included) but
    /// must NOT make the outcome observable to the client.
    std::function<void()> Run;
    /// Fulfills the client's ticket. Invoked by the worker only after the
    /// request's trace span is recorded, so a client woken by its ticket
    /// always finds the span in the tracer (no publish-before-trace race).
    std::function<void()> Publish;
  };

  /// Mutable per-tenant state behind TenantStats.
  struct TenantState {
    TenantStats Stats;
    vgpu::LaunchProfile LastProfile;
    bool HasProfile = false;
  };

  /// Admission control + enqueue; returns the request id or the rejection.
  /// Run computes, Publish fulfills the ticket (see Job).
  Expected<std::uint64_t> enqueue(const std::string &Tenant,
                                  std::function<void()> Run,
                                  std::function<void()> Publish);
  /// One worker slot: drains jobs until shutdown. Runs as a parallelFor
  /// index of the backing ThreadPool.
  void workerLoop();
  /// Bind a compiled kernel's module into the host runtime (idempotent for
  /// the cache-shared module; an error for a genuine name conflict).
  Expected<void> registerCompiled(const frontend::CompiledKernel &CK);
  /// Record an outcome against the tenant's stats.
  void finishTenant(const std::string &Tenant, bool Ok);
  template <typename Fn> void withTenant(std::string_view Tenant, Fn &&Edit) {
    std::lock_guard<std::mutex> Lock(TenantsMutex);
    auto It = Tenants.find(Tenant);
    if (It == Tenants.end())
      It = Tenants.emplace(std::string(Tenant), TenantState{}).first;
    Edit(It->second);
  }

  vgpu::VirtualGPU &Device;
  ServiceConfig Config;
  host::HostRuntime Host;

  // Submission queue. QMutex guards the deque, the stop flag, the depth
  // statistics and the active-job count; the CVs implement backpressure
  // (NotFull), dispatch (NotEmpty) and drain (Idle).
  mutable std::mutex QMutex;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::condition_variable Idle;
  std::deque<Job> Queue;
  bool Stopping = false;
  unsigned ActiveJobs = 0;
  std::uint64_t PeakDepth = 0;
  std::uint64_t TotalEnqueued = 0;
  std::uint64_t TotalRejected = 0;
  std::uint64_t DepthSum = 0; ///< sum of post-enqueue depths (mean = /Enqueued)

  // Kernel-name bindings shared by every tenant: name -> module that backs
  // it. Lets identical (cache-shared) compiles from different tenants land
  // on one registered image instead of colliding.
  std::mutex RegMutex;
  std::map<std::string, const ir::Module *, std::less<>> BoundKernels;
  std::vector<std::shared_ptr<ir::Module>> OwnedModules;

  mutable std::mutex TenantsMutex;
  std::map<std::string, TenantState, std::less<>> Tenants;

  std::atomic<std::uint64_t> NextRequestId{1};

  // The PR-1 fork-join pool provides the worker threads: the runner thread
  // sweeps the [0, Workers) index space, every index being one worker slot
  // that drains the queue until shutdown.
  support::ThreadPool Pool;
  std::thread Runner;
};

} // namespace codesign::service
