//===- service/Ticket.hpp - Future-based request handle --------------------===//
//
// Submitting a request to the service returns a Ticket: a one-shot future
// for the request's Expected<T> outcome plus the request's id for trace
// correlation. Tickets are movable, not copyable (one consumer per
// request), and get() blocks until a service worker completed the request.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <utility>

#include "support/Error.hpp"

namespace codesign::service {

/// Handle to one asynchronously processed request.
template <typename T> class Ticket {
public:
  Ticket() = default;
  Ticket(std::uint64_t Id, std::future<Expected<T>> Fut)
      : Id(Id), Fut(std::move(Fut)) {}

  /// The service-assigned request id (monotonic per service instance;
  /// matches the "service" trace events' req field).
  [[nodiscard]] std::uint64_t id() const { return Id; }

  /// True when this ticket is attached to a request.
  [[nodiscard]] bool valid() const { return Fut.valid(); }

  /// True when the outcome is available (get() would not block).
  [[nodiscard]] bool ready() const {
    return Fut.valid() && Fut.wait_for(std::chrono::seconds(0)) ==
                              std::future_status::ready;
  }

  /// Block until the request completed and take its outcome. One-shot:
  /// valid() is false afterwards.
  [[nodiscard]] Expected<T> get() {
    CODESIGN_ASSERT(Fut.valid(), "Ticket::get on an empty ticket");
    return Fut.get();
  }

private:
  std::uint64_t Id = 0;
  std::future<Expected<T>> Fut;
};

} // namespace codesign::service
