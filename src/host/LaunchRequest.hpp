//===- host/LaunchRequest.hpp - The unified launch-request surface ---------===//
//
// One validated request shape shared by every path that launches a kernel:
// the synchronous library call (HostRuntime::launch) and the asynchronous
// multi-tenant service (service::Service::submitLaunch) both marshal through
// a LaunchRequest instead of parallel ad-hoc signatures. The request names
// the kernel, carries the argument list and the launch geometry, and tags
// the submitting tenant so stats and trace events can be attributed.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/Error.hpp"

namespace codesign::host {

/// One kernel argument from the host's perspective.
struct KernelArg {
  enum class Kind { I64, F64, MappedPtr };
  Kind K = Kind::I64;
  std::int64_t I = 0;
  double F = 0.0;
  const void *HostPtr = nullptr;

  static KernelArg i64(std::int64_t V) { return {Kind::I64, V, 0.0, nullptr}; }
  static KernelArg f64(double V) { return {Kind::F64, 0, V, nullptr}; }
  /// A pointer previously mapped with enterData; translated at launch.
  static KernelArg mapped(const void *P) {
    return {Kind::MappedPtr, 0, 0.0, P};
  }
};

/// Launch geometry ("omp target teams num_teams(...) thread_limit(...)").
struct LaunchConfig {
  std::uint32_t NumTeams = 1;
  std::uint32_t NumThreads = 1;
};

/// A fully described kernel launch. `Tenant` is optional attribution: the
/// service uses it to isolate per-client stats and trace events; library
/// callers may leave it empty.
struct LaunchRequest {
  std::string Kernel;           ///< registered kernel name
  std::vector<KernelArg> Args;  ///< marshalled in order
  LaunchConfig Config;
  std::string Tenant;

  /// Convenience builder for the common case.
  static LaunchRequest make(std::string Kernel, std::vector<KernelArg> Args,
                            std::uint32_t NumTeams, std::uint32_t NumThreads,
                            std::string Tenant = {}) {
    LaunchRequest R;
    R.Kernel = std::move(Kernel);
    R.Args = std::move(Args);
    R.Config = {NumTeams, NumThreads};
    R.Tenant = std::move(Tenant);
    return R;
  }

  /// Structural validation shared by every entry point: a named kernel and
  /// a non-degenerate geometry. (Whether the kernel exists and the args are
  /// mapped is checked against runtime state at launch time.)
  [[nodiscard]] Expected<void> validate() const {
    if (Kernel.empty())
      return makeError("launch request: empty kernel name");
    if (Config.NumTeams == 0 || Config.NumThreads == 0)
      return makeError("launch request '", Kernel,
                       "': NumTeams and NumThreads must be nonzero");
    return {};
  }
};

} // namespace codesign::host
