//===- host/LaunchRequest.hpp - The unified launch-request surface ---------===//
//
// One validated request shape shared by every path that launches a kernel:
// the synchronous library call (HostRuntime::launch) and the asynchronous
// multi-tenant service (service::Service::submitLaunch) both marshal through
// a LaunchRequest instead of parallel ad-hoc signatures. The request names
// the kernel, carries the argument list and the launch geometry, and tags
// the submitting tenant so stats and trace events can be attributed.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/MapKind.hpp"
#include "support/Error.hpp"

namespace codesign::host {

/// One kernel argument from the host's perspective.
struct KernelArg {
  enum class Kind { I64, F64, MappedPtr, Buffer };
  Kind K = Kind::I64;
  std::int64_t I = 0;
  double F = 0.0;
  const void *HostPtr = nullptr;
  /// Buffer extent in bytes (Kind::Buffer only).
  std::uint64_t Bytes = 0;
  /// Motion clause for Kind::Buffer. MapKind::None means "no explicit
  /// clause": the runtime applies the OpenMP implicit default for pointers,
  /// tofrom.
  ir::MapKind Map = ir::MapKind::None;

  static KernelArg i64(std::int64_t V) { return {Kind::I64, V, 0.0, nullptr}; }
  static KernelArg f64(double V) { return {Kind::F64, 0, V, nullptr}; }
  /// A pointer previously mapped with enterData; translated at launch.
  static KernelArg mapped(const void *P) {
    return {Kind::MappedPtr, 0, 0.0, P};
  }
  /// A host buffer the runtime maps for the duration of the launch
  /// ("map(to/from/tofrom/alloc: p[0:n])" on the target construct). When the
  /// buffer is already device-resident (enterData), the launch-time map is a
  /// pure refcount bump and moves no bytes — the residency optimization the
  /// map-inference pass exploits. The pointed-to storage must stay valid for
  /// the launch; from-motion writes back through P.
  static KernelArg buffer(void *P, std::uint64_t Bytes,
                          ir::MapKind Map = ir::MapKind::None) {
    return {Kind::Buffer, 0, 0.0, P, Bytes, Map};
  }
};

/// Launch geometry ("omp target teams num_teams(...) thread_limit(...)").
struct LaunchConfig {
  std::uint32_t NumTeams = 1;
  std::uint32_t NumThreads = 1;
};

/// A fully described kernel launch. `Tenant` is optional attribution: the
/// service uses it to isolate per-client stats and trace events; library
/// callers may leave it empty.
struct LaunchRequest {
  std::string Kernel;           ///< registered kernel name
  std::vector<KernelArg> Args;  ///< marshalled in order
  LaunchConfig Config;
  std::string Tenant;
  /// Execution backend for this launch ("tree" | "bytecode" | "native",
  /// or a registered alias). Empty selects the device's configured
  /// backend (DeviceConfig::ExecBackend / CODESIGN_EXEC_BACKEND). Unknown
  /// names fail the launch with an explicit error, never fall back.
  std::string Backend;

  /// Convenience builder for the common case.
  static LaunchRequest make(std::string Kernel, std::vector<KernelArg> Args,
                            std::uint32_t NumTeams, std::uint32_t NumThreads,
                            std::string Tenant = {}) {
    LaunchRequest R;
    R.Kernel = std::move(Kernel);
    R.Args = std::move(Args);
    R.Config = {NumTeams, NumThreads};
    R.Tenant = std::move(Tenant);
    return R;
  }

  /// Structural validation shared by every entry point: a named kernel and
  /// a non-degenerate geometry. (Whether the kernel exists and the args are
  /// mapped is checked against runtime state at launch time.)
  [[nodiscard]] Expected<void> validate() const {
    if (Kernel.empty())
      return makeError("launch request: empty kernel name");
    if (Config.NumTeams == 0 || Config.NumThreads == 0)
      return makeError("launch request '", Kernel,
                       "': NumTeams and NumThreads must be nonzero");
    for (std::size_t Idx = 0; Idx < Args.size(); ++Idx) {
      const KernelArg &A = Args[Idx];
      if (A.K == KernelArg::Kind::Buffer && (!A.HostPtr || A.Bytes == 0))
        return makeError("launch request '", Kernel, "': buffer argument #",
                         std::to_string(Idx),
                         " needs a non-null pointer and a nonzero size");
    }
    return {};
  }
};

} // namespace codesign::host
