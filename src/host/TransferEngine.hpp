//===- host/TransferEngine.hpp - Host<->device data-motion engine ----------===//
//
// Every byte that crosses the host<->device boundary goes through this
// engine. It replaces the implicit shared-address-space shortcut the early
// runtime hid behind updateTo/updateFrom: callers now see explicit
// device-resident buffers, and every transfer is
//
//   * performed (VirtualGPU::write / VirtualGPU::read),
//   * costed under the device's link model (CostModel::TransferSetupCycles
//     plus bytes / TransferBytesPerCycle), and
//   * accounted three ways: the engine-lifetime TransferStats aggregate,
//     an optional per-scope accumulator (per-launch / per-pipeline
//     attribution), and the process-wide host.transfer.* counters that
//     BenchReport folds into the BENCH JSON "transfers" section.
//
// The engine is thread-safe; the multi-tenant service drives one engine
// from many workers.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <mutex>

#include "vgpu/VirtualGPU.hpp"

namespace codesign::host {

/// Why a transfer happened (diagnostics and trace tags).
enum class TransferCause : std::uint8_t {
  EnterData,  ///< map-time `to` motion (enterData / pipeline prologue)
  ExitData,   ///< unmap-time `from` motion (exitData / pipeline epilogue)
  UpdateTo,   ///< explicit `omp target update to`
  UpdateFrom, ///< explicit `omp target update from`
  LaunchMap,  ///< buffer-argument auto-map at launch
  LaunchUnmap ///< buffer-argument auto-unmap after launch
};

/// Stable label for a cause ("enter_data", "launch_map", ...).
const char *transferCauseName(TransferCause C);

/// Aggregated transfer accounting. Plain data; thread safety is the
/// engine's job.
struct TransferStats {
  std::uint64_t TransfersToDevice = 0;
  std::uint64_t TransfersFromDevice = 0;
  std::uint64_t BytesToDevice = 0;
  std::uint64_t BytesFromDevice = 0;
  std::uint64_t ModeledCycles = 0;

  [[nodiscard]] std::uint64_t totalTransfers() const {
    return TransfersToDevice + TransfersFromDevice;
  }
  [[nodiscard]] std::uint64_t totalBytes() const {
    return BytesToDevice + BytesFromDevice;
  }
  void accumulate(const TransferStats &O) {
    TransfersToDevice += O.TransfersToDevice;
    TransfersFromDevice += O.TransfersFromDevice;
    BytesToDevice += O.BytesToDevice;
    BytesFromDevice += O.BytesFromDevice;
    ModeledCycles += O.ModeledCycles;
  }
};

/// The one gate for host<->device data motion.
class TransferEngine {
public:
  explicit TransferEngine(vgpu::VirtualGPU &Device) : Device(Device) {}
  TransferEngine(const TransferEngine &) = delete;
  TransferEngine &operator=(const TransferEngine &) = delete;

  /// Copy Size bytes host -> device. Scope, when given, additionally
  /// accumulates the transfer (per-launch / per-pipeline attribution).
  void toDevice(vgpu::DeviceAddr Dst, const void *Src, std::uint64_t Size,
                TransferCause Cause, TransferStats *Scope = nullptr);

  /// Copy Size bytes device -> host.
  void fromDevice(void *Dst, vgpu::DeviceAddr Src, std::uint64_t Size,
                  TransferCause Cause, TransferStats *Scope = nullptr);

  /// Modeled link cycles for one transfer of Size bytes.
  [[nodiscard]] std::uint64_t modeledCycles(std::uint64_t Size) const;

  /// Engine-lifetime totals.
  [[nodiscard]] TransferStats stats() const;
  /// Zero the lifetime totals (bench phase isolation). The process-wide
  /// host.transfer.* counters are reset separately via Counters::reset.
  void resetStats();

private:
  void account(bool ToDevice, std::uint64_t Size, TransferCause Cause,
               TransferStats *Scope);

  vgpu::VirtualGPU &Device;
  mutable std::mutex Mutex;
  TransferStats Total;
};

} // namespace codesign::host
