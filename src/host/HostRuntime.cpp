#include "host/HostRuntime.hpp"

#include <cstring>

namespace codesign::host {

HostRuntime::~HostRuntime() {
  // Release leaked mappings so the device allocator stays usable for the
  // next runtime instance; tests check numMappings() to catch the leaks
  // themselves.
  for (auto &[HostPtr, M] : Table)
    Device.release(M.Addr);
}

Expected<void> HostRuntime::registerImage(
    const ir::Module &M,
    std::shared_ptr<const vgpu::BytecodeModule> Bytecode) {
  // Validate before mutating anything so a rejected image registers
  // nothing at all.
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel) && Kernels.count(F->name()))
      return makeError("registerImage: kernel '", F->name(),
                       "' is already registered; unregister the previous "
                       "image first");
  Images.push_back(Device.loadImage(M, std::move(Bytecode)));
  const vgpu::ModuleImage *Img = Images.back().get();
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel))
      Kernels[F->name()] = KernelEntry{Img, F.get()};
  return {};
}

void HostRuntime::unregisterImage(const ir::Module &M) {
  for (auto It = Kernels.begin(); It != Kernels.end();) {
    if (&It->second.Image->module() == &M)
      It = Kernels.erase(It);
    else
      ++It;
  }
  std::erase_if(Images, [&](const std::unique_ptr<vgpu::ModuleImage> &Img) {
    return &Img->module() == &M;
  });
}

Expected<DeviceAddr> HostRuntime::enterData(const void *HostPtr,
                                            std::uint64_t Size, bool CopyTo) {
  if (!HostPtr || Size == 0)
    return makeError("enterData: null pointer or zero size");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(HostPtr);
  if (It != Table.end()) {
    if (It->second.Size != Size)
      return makeError("enterData: pointer already mapped with a different "
                       "size");
    ++It->second.RefCount;
    return It->second.Addr;
  }
  auto Addr = Device.tryAllocate(Size);
  if (!Addr)
    return makeError("enterData: ", Addr.error().message());
  Mapping M;
  M.Addr = *Addr;
  M.Size = Size;
  M.RefCount = 1;
  if (CopyTo)
    Device.write(M.Addr,
                 std::span(static_cast<const std::uint8_t *>(HostPtr), Size));
  Table.emplace(HostPtr, M);
  return M.Addr;
}

Expected<bool> HostRuntime::exitData(void *HostPtr, bool CopyFrom) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("exitData: pointer is not mapped");
  Mapping &M = It->second;
  if (CopyFrom)
    Device.read(M.Addr,
                std::span(static_cast<std::uint8_t *>(HostPtr), M.Size));
  if (--M.RefCount == 0) {
    Device.release(M.Addr);
    Table.erase(It);
  }
  return true;
}

Expected<bool> HostRuntime::updateTo(const void *HostPtr) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateTo: pointer is not mapped");
  Device.write(It->second.Addr,
               std::span(static_cast<const std::uint8_t *>(HostPtr),
                         It->second.Size));
  return true;
}

Expected<bool> HostRuntime::updateFrom(void *HostPtr) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateFrom: pointer is not mapped");
  Device.read(It->second.Addr,
              std::span(static_cast<std::uint8_t *>(HostPtr),
                        It->second.Size));
  return true;
}

Expected<DeviceAddr> HostRuntime::lookup(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("lookup: pointer is not mapped");
  return It->second.Addr;
}

bool HostRuntime::isPresent(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Table.find(HostPtr) != Table.end();
}

Expected<LaunchResult> HostRuntime::launch(std::string_view KernelName,
                                           std::span<const KernelArg> Args,
                                           std::uint32_t NumTeams,
                                           std::uint32_t NumThreads) {
  auto It = Kernels.find(KernelName);
  if (It == Kernels.end())
    return makeError("launch: no registered kernel named '",
                     std::string(KernelName), "'");
  std::vector<std::uint64_t> Bits;
  Bits.reserve(Args.size());
  for (std::size_t Idx = 0; Idx < Args.size(); ++Idx) {
    const KernelArg &A = Args[Idx];
    switch (A.K) {
    case KernelArg::Kind::I64:
      Bits.push_back(static_cast<std::uint64_t>(A.I));
      break;
    case KernelArg::Kind::F64: {
      std::uint64_t B;
      std::memcpy(&B, &A.F, 8);
      Bits.push_back(B);
      break;
    }
    case KernelArg::Kind::MappedPtr: {
      auto Addr = lookup(A.HostPtr);
      if (!Addr)
        return makeError("launch '", std::string(KernelName), "': argument #",
                         std::to_string(Idx),
                         " is not device-mapped (map it with enterData "
                         "first): ",
                         Addr.error().message());
      Bits.push_back(Addr->Bits);
      break;
    }
    }
  }
  LaunchResult R = Device.launch(*It->second.Image, It->second.Kernel, Bits,
                                 NumTeams, NumThreads);
  return R;
}

} // namespace codesign::host
