#include "host/HostRuntime.hpp"

#include <cstring>

namespace codesign::host {

HostRuntime::~HostRuntime() {
  // Release leaked mappings so the device allocator stays usable for the
  // next runtime instance; tests check numMappings() to catch the leaks
  // themselves.
  for (auto &[HostPtr, M] : Table)
    Device.release(M.Addr);
}

Expected<void> HostRuntime::registerImage(
    const ir::Module &M,
    std::shared_ptr<const vgpu::BytecodeModule> Bytecode) {
  std::lock_guard<std::mutex> Lock(ImagesMutex);
  // Validate before mutating anything so a rejected image registers
  // nothing at all.
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel) && Kernels.count(F->name()))
      return makeError("registerImage: kernel '", F->name(),
                       "' is already registered; unregister the previous "
                       "image first");
  ImageRec Rec;
  Rec.Image = Device.loadImage(M, std::move(Bytecode));
  Rec.InFlight = std::make_shared<std::atomic<std::uint32_t>>(0);
  const vgpu::ModuleImage *Img = Rec.Image.get();
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel))
      Kernels[F->name()] = KernelEntry{Img, F.get(), Rec.InFlight};
  Images.push_back(std::move(Rec));
  return {};
}

Expected<void> HostRuntime::unregisterImage(const ir::Module &M) {
  std::lock_guard<std::mutex> Lock(ImagesMutex);
  bool Found = false;
  for (const ImageRec &Rec : Images) {
    if (&Rec.Image->module() != &M)
      continue;
    Found = true;
    if (const std::uint32_t Running = Rec.InFlight->load())
      return makeError("unregisterImage: module has ", std::to_string(Running),
                       " in-flight launch(es); wait for them to complete "
                       "before unregistering");
  }
  if (!Found)
    return makeError("unregisterImage: module was never registered (or was "
                     "already unregistered)");
  for (auto It = Kernels.begin(); It != Kernels.end();) {
    if (&It->second.Image->module() == &M)
      It = Kernels.erase(It);
    else
      ++It;
  }
  std::erase_if(Images, [&](const ImageRec &Rec) {
    return &Rec.Image->module() == &M;
  });
  return {};
}

Expected<DeviceAddr> HostRuntime::enterData(const void *HostPtr,
                                            std::uint64_t Size, bool CopyTo) {
  if (!HostPtr || Size == 0)
    return makeError("enterData: null pointer or zero size");
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It != Table.end()) {
    if (It->second.Size != Size)
      return makeError("enterData: pointer already mapped with a different "
                       "size");
    ++It->second.RefCount;
    return It->second.Addr;
  }
  auto Addr = Device.tryAllocate(Size);
  if (!Addr)
    return makeError("enterData: ", Addr.error().message());
  Mapping M;
  M.Addr = *Addr;
  M.Size = Size;
  M.RefCount = 1;
  if (CopyTo)
    Device.write(M.Addr,
                 std::span(static_cast<const std::uint8_t *>(HostPtr), Size));
  Table.emplace(HostPtr, M);
  return M.Addr;
}

Expected<void> HostRuntime::exitData(void *HostPtr, bool CopyFrom) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("exitData: pointer is not mapped");
  Mapping &M = It->second;
  if (CopyFrom)
    Device.read(M.Addr,
                std::span(static_cast<std::uint8_t *>(HostPtr), M.Size));
  if (--M.RefCount == 0) {
    Device.release(M.Addr);
    Table.erase(It);
  }
  return {};
}

Expected<void> HostRuntime::updateTo(const void *HostPtr) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateTo: pointer is not mapped");
  Device.write(It->second.Addr,
               std::span(static_cast<const std::uint8_t *>(HostPtr),
                         It->second.Size));
  return {};
}

Expected<void> HostRuntime::updateFrom(void *HostPtr) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateFrom: pointer is not mapped");
  Device.read(It->second.Addr,
              std::span(static_cast<std::uint8_t *>(HostPtr),
                        It->second.Size));
  return {};
}

Expected<DeviceAddr> HostRuntime::lookup(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("lookup: pointer is not mapped");
  return It->second.Addr;
}

bool HostRuntime::isPresent(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(TableMutex);
  return Table.find(HostPtr) != Table.end();
}

Expected<LaunchResult> HostRuntime::launch(const LaunchRequest &Request) {
  if (auto Valid = Request.validate(); !Valid)
    return Valid.error();
  // Resolve and pin the kernel's image: with the entry copied out and the
  // in-flight count raised, unregisterImage refuses to drop the image while
  // the launch below runs outside the lock.
  KernelEntry Entry;
  {
    std::lock_guard<std::mutex> Lock(ImagesMutex);
    auto It = Kernels.find(Request.Kernel);
    if (It == Kernels.end())
      return makeError("launch: no registered kernel named '", Request.Kernel,
                       "'");
    Entry = It->second;
    Entry.InFlight->fetch_add(1);
  }
  struct Unpin {
    std::atomic<std::uint32_t> &Count;
    ~Unpin() { Count.fetch_sub(1); }
  } Unpin{*Entry.InFlight};
  std::vector<std::uint64_t> Bits;
  Bits.reserve(Request.Args.size());
  for (std::size_t Idx = 0; Idx < Request.Args.size(); ++Idx) {
    const KernelArg &A = Request.Args[Idx];
    switch (A.K) {
    case KernelArg::Kind::I64:
      Bits.push_back(static_cast<std::uint64_t>(A.I));
      break;
    case KernelArg::Kind::F64: {
      std::uint64_t B;
      std::memcpy(&B, &A.F, 8);
      Bits.push_back(B);
      break;
    }
    case KernelArg::Kind::MappedPtr: {
      auto Addr = lookup(A.HostPtr);
      if (!Addr)
        return makeError("launch '", Request.Kernel, "': argument #",
                         std::to_string(Idx),
                         " is not device-mapped (map it with enterData "
                         "first): ",
                         Addr.error().message());
      Bits.push_back(Addr->Bits);
      break;
    }
    }
  }
  LaunchResult R = Device.launch(*Entry.Image, Entry.Kernel, Bits,
                                 Request.Config.NumTeams,
                                 Request.Config.NumThreads);
  return R;
}

} // namespace codesign::host
