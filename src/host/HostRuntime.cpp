#include "host/HostRuntime.hpp"

#include <cstring>

namespace codesign::host {

HostRuntime::~HostRuntime() {
  // Release leaked mappings so the device allocator stays usable for the
  // next runtime instance; tests check numMappings() to catch the leaks
  // themselves.
  for (auto &[HostPtr, M] : Table)
    Device.release(M.Addr);
}

Expected<void> HostRuntime::registerImage(
    const ir::Module &M,
    std::shared_ptr<const vgpu::BytecodeModule> Bytecode) {
  std::lock_guard<std::mutex> Lock(ImagesMutex);
  // Validate before mutating anything so a rejected image registers
  // nothing at all.
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel) && Kernels.count(F->name()))
      return makeError("registerImage: kernel '", F->name(),
                       "' is already registered; unregister the previous "
                       "image first");
  ImageRec Rec;
  Rec.Image = Device.loadImage(M, std::move(Bytecode));
  Rec.InFlight = std::make_shared<std::atomic<std::uint32_t>>(0);
  const vgpu::ModuleImage *Img = Rec.Image.get();
  for (const auto &F : M.functions())
    if (F->hasAttr(ir::FnAttr::Kernel))
      Kernels[F->name()] = KernelEntry{Img, F.get(), Rec.InFlight};
  Images.push_back(std::move(Rec));
  return {};
}

Expected<void> HostRuntime::unregisterImage(const ir::Module &M) {
  std::lock_guard<std::mutex> Lock(ImagesMutex);
  bool Found = false;
  for (const ImageRec &Rec : Images) {
    if (&Rec.Image->module() != &M)
      continue;
    Found = true;
    if (const std::uint32_t Running = Rec.InFlight->load())
      return makeError("unregisterImage: module has ", std::to_string(Running),
                       " in-flight launch(es); wait for them to complete "
                       "before unregistering");
  }
  if (!Found)
    return makeError("unregisterImage: module was never registered (or was "
                     "already unregistered)");
  for (auto It = Kernels.begin(); It != Kernels.end();) {
    if (&It->second.Image->module() == &M)
      It = Kernels.erase(It);
    else
      ++It;
  }
  std::erase_if(Images, [&](const ImageRec &Rec) {
    return &Rec.Image->module() == &M;
  });
  return {};
}

Expected<DeviceAddr> HostRuntime::enterDataImpl(const void *HostPtr,
                                                std::uint64_t Size,
                                                bool CopyTo,
                                                TransferCause Cause,
                                                TransferStats *Scope) {
  if (!HostPtr || Size == 0)
    return makeError("enterData: null pointer or zero size");
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It != Table.end()) {
    if (It->second.Size != Size)
      return makeError("enterData: pointer already mapped with a different "
                       "size");
    // Already present: refcount bump only, no motion (OpenMP present-table
    // semantics). This is the zero-byte path pre-mapped residency buys.
    ++It->second.RefCount;
    return It->second.Addr;
  }
  auto Addr = Device.tryAllocate(Size);
  if (!Addr)
    return makeError("enterData: ", Addr.error().message());
  Mapping M;
  M.Addr = *Addr;
  M.Size = Size;
  M.RefCount = 1;
  if (CopyTo)
    Engine.toDevice(M.Addr, HostPtr, Size, Cause, Scope);
  Table.emplace(HostPtr, M);
  return M.Addr;
}

Expected<DeviceAddr> HostRuntime::enterData(const void *HostPtr,
                                            std::uint64_t Size, bool CopyTo,
                                            TransferStats *Scope) {
  return enterDataImpl(HostPtr, Size, CopyTo, TransferCause::EnterData,
                       Scope);
}

Expected<void> HostRuntime::exitDataImpl(void *HostPtr, bool CopyFrom,
                                         TransferCause Cause,
                                         TransferStats *Scope) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("exitData: pointer is not mapped");
  Mapping &M = It->second;
  if (--M.RefCount == 0) {
    // From-motion applies only on the releasing exit: an inner exit of a
    // nested mapping is bookkeeping, not data motion.
    if (CopyFrom)
      Engine.fromDevice(HostPtr, M.Addr, M.Size, Cause, Scope);
    Device.release(M.Addr);
    Table.erase(It);
  }
  return {};
}

Expected<void> HostRuntime::exitData(void *HostPtr, bool CopyFrom,
                                     TransferStats *Scope) {
  return exitDataImpl(HostPtr, CopyFrom, TransferCause::ExitData, Scope);
}

Expected<void> HostRuntime::updateTo(const void *HostPtr) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateTo: pointer is not mapped");
  Engine.toDevice(It->second.Addr, HostPtr, It->second.Size,
                  TransferCause::UpdateTo, nullptr);
  return {};
}

Expected<void> HostRuntime::updateFrom(void *HostPtr) {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("updateFrom: pointer is not mapped");
  Engine.fromDevice(HostPtr, It->second.Addr, It->second.Size,
                    TransferCause::UpdateFrom, nullptr);
  return {};
}

Expected<DeviceAddr> HostRuntime::lookup(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(TableMutex);
  auto It = Table.find(HostPtr);
  if (It == Table.end())
    return makeError("lookup: pointer is not mapped");
  return It->second.Addr;
}

bool HostRuntime::isPresent(const void *HostPtr) const {
  std::lock_guard<std::mutex> Lock(TableMutex);
  return Table.find(HostPtr) != Table.end();
}

const ir::Function *HostRuntime::findKernel(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(ImagesMutex);
  auto It = Kernels.find(Name);
  return It == Kernels.end() ? nullptr : It->second.Kernel;
}

Expected<LaunchResult> HostRuntime::launch(const LaunchRequest &Request) {
  if (auto Valid = Request.validate(); !Valid)
    return Valid.error();
  // Resolve and pin the kernel's image: with the entry copied out and the
  // in-flight count raised, unregisterImage refuses to drop the image while
  // the launch below runs outside the lock.
  KernelEntry Entry;
  {
    std::lock_guard<std::mutex> Lock(ImagesMutex);
    auto It = Kernels.find(Request.Kernel);
    if (It == Kernels.end())
      return makeError("launch: no registered kernel named '", Request.Kernel,
                       "'");
    Entry = It->second;
    Entry.InFlight->fetch_add(1);
  }
  struct Unpin {
    std::atomic<std::uint32_t> &Count;
    ~Unpin() { Count.fetch_sub(1); }
  } Unpin{*Entry.InFlight};
  // Per-launch transfer attribution: everything the buffer auto-mapping
  // below moves lands in Scope and, after the launch, in the profile.
  TransferStats Scope;
  // Indices of Buffer arguments this launch mapped; unwound on failure
  // (no from-motion) and unmapped per their clauses after the launch.
  std::vector<std::size_t> MappedBufs;
  auto UnwindBuffers = [&] {
    for (auto It = MappedBufs.rbegin(); It != MappedBufs.rend(); ++It) {
      const KernelArg &A = Request.Args[*It];
      // Rollback is bookkeeping only: a failed launch must not write
      // half-initialized device bytes back over host data.
      (void)exitDataImpl(const_cast<void *>(A.HostPtr), /*CopyFrom=*/false,
                         TransferCause::LaunchUnmap, &Scope);
    }
    MappedBufs.clear();
  };
  std::vector<std::uint64_t> Bits;
  Bits.reserve(Request.Args.size());
  for (std::size_t Idx = 0; Idx < Request.Args.size(); ++Idx) {
    const KernelArg &A = Request.Args[Idx];
    switch (A.K) {
    case KernelArg::Kind::I64:
      Bits.push_back(static_cast<std::uint64_t>(A.I));
      break;
    case KernelArg::Kind::F64: {
      std::uint64_t B;
      std::memcpy(&B, &A.F, 8);
      Bits.push_back(B);
      break;
    }
    case KernelArg::Kind::MappedPtr: {
      auto Addr = lookup(A.HostPtr);
      if (!Addr) {
        UnwindBuffers();
        return makeError("launch '", Request.Kernel, "': argument #",
                         std::to_string(Idx),
                         " is not device-mapped (map it with enterData "
                         "first): ",
                         Addr.error().message());
      }
      Bits.push_back(Addr->Bits);
      break;
    }
    case KernelArg::Kind::Buffer: {
      // Map for the duration of the launch. When the buffer is already
      // resident this is a refcount bump and moves nothing.
      auto Addr = enterDataImpl(A.HostPtr, A.Bytes,
                                /*CopyTo=*/ir::mapCopiesTo(A.Map),
                                TransferCause::LaunchMap, &Scope);
      if (!Addr) {
        UnwindBuffers();
        return makeError("launch '", Request.Kernel, "': argument #",
                         std::to_string(Idx), " could not be mapped (",
                         ir::mapKindName(A.Map), ", ",
                         std::to_string(A.Bytes),
                         " bytes): ", Addr.error().message());
      }
      MappedBufs.push_back(Idx);
      Bits.push_back(Addr->Bits);
      break;
    }
    }
  }
  LaunchResult R = Device.launch(*Entry.Image, Entry.Kernel, Bits,
                                 Request.Config.NumTeams,
                                 Request.Config.NumThreads, Request.Backend);
  // Unmap buffer arguments. From-motion follows the clause but is
  // suppressed when the kernel trapped (its output is not meaningful) and,
  // per present-table rules, when an outer mapping keeps the buffer
  // resident — the delayed motion happens at that mapping's releasing exit.
  for (auto It = MappedBufs.rbegin(); It != MappedBufs.rend(); ++It) {
    const KernelArg &A = Request.Args[*It];
    (void)exitDataImpl(const_cast<void *>(A.HostPtr),
                       /*CopyFrom=*/R.Ok && ir::mapCopiesFrom(A.Map),
                       TransferCause::LaunchUnmap, &Scope);
  }
  R.Profile.TransfersToDevice = Scope.TransfersToDevice;
  R.Profile.TransfersFromDevice = Scope.TransfersFromDevice;
  R.Profile.BytesToDevice = Scope.BytesToDevice;
  R.Profile.BytesFromDevice = Scope.BytesFromDevice;
  R.Profile.TransferCycles = Scope.ModeledCycles;
  return R;
}

} // namespace codesign::host
