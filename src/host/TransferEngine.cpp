#include "host/TransferEngine.hpp"

#include "support/Stats.hpp"
#include "support/Trace.hpp"

namespace codesign::host {

const char *transferCauseName(TransferCause C) {
  switch (C) {
  case TransferCause::EnterData:
    return "enter_data";
  case TransferCause::ExitData:
    return "exit_data";
  case TransferCause::UpdateTo:
    return "update_to";
  case TransferCause::UpdateFrom:
    return "update_from";
  case TransferCause::LaunchMap:
    return "launch_map";
  case TransferCause::LaunchUnmap:
    return "launch_unmap";
  }
  return "unknown";
}

std::uint64_t TransferEngine::modeledCycles(std::uint64_t Size) const {
  const vgpu::CostModel &C = Device.config().Costs;
  const std::uint64_t PerByte =
      Size / std::max<std::uint64_t>(C.TransferBytesPerCycle, 1);
  return C.TransferSetupCycles + PerByte;
}

void TransferEngine::account(bool ToDevice, std::uint64_t Size,
                             TransferCause Cause, TransferStats *Scope) {
  const std::uint64_t Cycles = modeledCycles(Size);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ToDevice) {
      ++Total.TransfersToDevice;
      Total.BytesToDevice += Size;
    } else {
      ++Total.TransfersFromDevice;
      Total.BytesFromDevice += Size;
    }
    Total.ModeledCycles += Cycles;
  }
  if (Scope) {
    if (ToDevice) {
      ++Scope->TransfersToDevice;
      Scope->BytesToDevice += Size;
    } else {
      ++Scope->TransfersFromDevice;
      Scope->BytesFromDevice += Size;
    }
    Scope->ModeledCycles += Cycles;
  }
  const char *Dir = ToDevice ? "h2d" : "d2h";
  Counters::global().add(std::string("host.transfer.") + Dir + ".transfers");
  Counters::global().add(std::string("host.transfer.") + Dir + ".bytes",
                         Size);
  Counters::global().add("host.transfer.modeled_cycles", Cycles);
  if (trace::Tracer::global().enabled())
    trace::Tracer::global().span(
        "transfer", transferCauseName(Cause), Cycles,
        {{"bytes", Size}, {"h2d", ToDevice ? 1ULL : 0ULL}});
}

void TransferEngine::toDevice(vgpu::DeviceAddr Dst, const void *Src,
                              std::uint64_t Size, TransferCause Cause,
                              TransferStats *Scope) {
  Device.write(Dst, std::span(static_cast<const std::uint8_t *>(Src), Size));
  account(/*ToDevice=*/true, Size, Cause, Scope);
}

void TransferEngine::fromDevice(void *Dst, vgpu::DeviceAddr Src,
                                std::uint64_t Size, TransferCause Cause,
                                TransferStats *Scope) {
  Device.read(Src, std::span(static_cast<std::uint8_t *>(Dst), Size));
  account(/*ToDevice=*/false, Size, Cause, Scope);
}

TransferStats TransferEngine::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Total;
}

void TransferEngine::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Total = TransferStats{};
}

} // namespace codesign::host
