//===- host/HostRuntime.hpp - libomptarget-style host runtime --------------===//
//
// The host side of the paper's Section II-C execution model: "The host
// (CPU) coordinates scheduling and synchronization of target tasks (i.e.
// kernels), as well as memory allocation and movement between the host and
// GPUs." Provides the classic present-table data mapping with reference
// counts (target enter/exit/update data) and kernel launches that marshal
// scalar arguments, translate mapped host pointers to device addresses, and
// auto-map Buffer arguments per their map(to/from/tofrom/alloc) clauses.
// Every byte of host<->device motion goes through the owned TransferEngine,
// which costs and accounts it (per-launch profile, lifetime stats, BENCH
// JSON "transfers" section).
//
// All entry points are safe to call concurrently: the present table and the
// image/kernel tables are guarded independently, and launches pin their
// image with an in-flight count so unregisterImage cannot pull a module out
// from under a running kernel (it reports the conflict instead). This is
// what lets the multi-tenant service (src/service) drive one runtime from
// many worker threads.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "host/LaunchRequest.hpp"
#include "host/TransferEngine.hpp"
#include "support/Error.hpp"
#include "vgpu/VirtualGPU.hpp"

namespace codesign::host {

using vgpu::DeviceAddr;
using vgpu::LaunchResult;

/// Host-side OpenMP offloading runtime over one virtual device.
class HostRuntime {
public:
  explicit HostRuntime(vgpu::VirtualGPU &Device) : Device(Device) {}
  ~HostRuntime();
  HostRuntime(const HostRuntime &) = delete;
  HostRuntime &operator=(const HostRuntime &) = delete;

  // --- Device images -------------------------------------------------------

  /// Register and load a compiled module; kernels become launchable by
  /// name. The module must outlive this runtime (or be removed with
  /// unregisterImage first). Fails — registering nothing — when any kernel
  /// name in M is already registered: silently overwriting would leave
  /// launches bound to an ambiguous image. A pre-lowered bytecode module
  /// (CompiledKernel::Bytecode) is attached to the image when provided so
  /// bytecode-tier launches skip the lazy lowering.
  Expected<void>
  registerImage(const ir::Module &M,
                std::shared_ptr<const vgpu::BytecodeModule> Bytecode = nullptr);

  /// Remove every image previously registered from M, dropping its kernel
  /// name bindings. Fails without unregistering anything when M was never
  /// registered (the caller's bookkeeping is off) or when any of M's
  /// kernels is still executing (an in-flight launch holds the image).
  Expected<void> unregisterImage(const ir::Module &M);

  // --- Data mapping (present table, reference counted) ----------------------

  /// Map [HostPtr, HostPtr+Size) to device memory ("omp target enter
  /// data"). Increments the reference count when already present (the size
  /// must then match) — a re-map of a present pointer moves no bytes.
  /// CopyTo controls the `to` motion clause and applies only when the
  /// mapping is created. Scope, when given, additionally accumulates any
  /// motion (per-pipeline attribution).
  Expected<DeviceAddr> enterData(const void *HostPtr, std::uint64_t Size,
                                 bool CopyTo = true,
                                 TransferStats *Scope = nullptr);

  /// Unmap ("omp target exit data"): decrement the reference count.
  /// Following the OpenMP present-table rules, the `from` motion requested
  /// with CopyFrom applies only when the reference count reaches zero (the
  /// storage is then released); an inner exit of a nested mapping moves no
  /// bytes. Fails with a "pointer is not mapped" error for pointers that
  /// were never mapped (or already fully unmapped).
  Expected<void> exitData(void *HostPtr, bool CopyFrom = false,
                          TransferStats *Scope = nullptr);

  /// "omp target update to/from": refresh one direction without changing
  /// reference counts. Fails with a "pointer is not mapped" error for
  /// unmapped pointers.
  Expected<void> updateTo(const void *HostPtr);
  Expected<void> updateFrom(void *HostPtr);

  /// Device address of a mapped host pointer (error when not present).
  Expected<DeviceAddr> lookup(const void *HostPtr) const;
  /// True when the pointer is currently mapped.
  [[nodiscard]] bool isPresent(const void *HostPtr) const;
  /// Number of live mappings (leak checks in tests).
  [[nodiscard]] std::size_t numMappings() const {
    std::lock_guard<std::mutex> Lock(TableMutex);
    return Table.size();
  }

  /// The data-motion engine every transfer goes through (stats and the
  /// modeled link cost live there).
  [[nodiscard]] TransferEngine &transfers() { return Engine; }
  [[nodiscard]] const TransferEngine &transfers() const { return Engine; }

  // --- Kernel launches ---------------------------------------------------------

  /// Launch a registered kernel ("omp target teams ..."): the one validated
  /// entry point every path funnels through. Marshals the request's
  /// arguments (translating mapped pointers, auto-mapping Buffer arguments
  /// for the duration of the launch per their map clauses), pins the
  /// kernel's image for the duration, and blocks until completion. The
  /// result's LaunchProfile carries the transfers this launch caused.
  Expected<LaunchResult> launch(const LaunchRequest &Request);

  /// The registered kernel function behind a name, or null. Lets callers
  /// (the service's pipeline planner, benches) consult declared/inferred
  /// map clauses before building launch requests.
  [[nodiscard]] const ir::Function *findKernel(std::string_view Name) const;

  /// Classic positional form; thin wrapper that builds a LaunchRequest.
  Expected<LaunchResult> launch(std::string_view KernelName,
                                std::span<const KernelArg> Args,
                                std::uint32_t NumTeams,
                                std::uint32_t NumThreads) {
    return launch(LaunchRequest::make(
        std::string(KernelName), {Args.begin(), Args.end()}, NumTeams,
        NumThreads));
  }

private:
  struct Mapping {
    DeviceAddr Addr;
    std::uint64_t Size = 0;
    std::uint32_t RefCount = 0;
  };

  struct ImageRec {
    std::unique_ptr<vgpu::ModuleImage> Image;
    /// Launches currently executing from this image. Shared so a launch
    /// can safely decrement after the runtime dropped the record.
    std::shared_ptr<std::atomic<std::uint32_t>> InFlight;
  };

  struct KernelEntry {
    const vgpu::ModuleImage *Image = nullptr;
    const ir::Function *Kernel = nullptr;
    std::shared_ptr<std::atomic<std::uint32_t>> InFlight;
  };

  /// Map/unmap internals shared by the public entry points and the
  /// launch-time buffer auto-mapping (which attributes its transfers to a
  /// per-launch scope under Launch* causes).
  Expected<DeviceAddr> enterDataImpl(const void *HostPtr, std::uint64_t Size,
                                     bool CopyTo, TransferCause Cause,
                                     TransferStats *Scope);
  Expected<void> exitDataImpl(void *HostPtr, bool CopyFrom,
                              TransferCause Cause, TransferStats *Scope);

  vgpu::VirtualGPU &Device;
  TransferEngine Engine{Device};
  /// Guards the present table: application host threads may issue
  /// enterData/exitData concurrently (OpenMP target tasks).
  mutable std::mutex TableMutex;
  std::map<const void *, Mapping> Table;
  /// Guards the image list and kernel-name bindings; launches resolve and
  /// pin their entry under this lock, then run without it.
  mutable std::mutex ImagesMutex;
  std::vector<ImageRec> Images;
  std::map<std::string, KernelEntry, std::less<>> Kernels;
};

} // namespace codesign::host
