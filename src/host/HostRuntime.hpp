//===- host/HostRuntime.hpp - libomptarget-style host runtime --------------===//
//
// The host side of the paper's Section II-C execution model: "The host
// (CPU) coordinates scheduling and synchronization of target tasks (i.e.
// kernels), as well as memory allocation and movement between the host and
// GPUs." Provides the classic present-table data mapping with reference
// counts (target enter/exit/update data) and kernel launches that marshal
// scalar arguments and translate mapped host pointers to device addresses.
//
//===----------------------------------------------------------------------===//
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "support/Error.hpp"
#include "vgpu/VirtualGPU.hpp"

namespace codesign::host {

using vgpu::DeviceAddr;
using vgpu::LaunchResult;

/// One kernel argument from the host's perspective.
struct KernelArg {
  enum class Kind { I64, F64, MappedPtr };
  Kind K = Kind::I64;
  std::int64_t I = 0;
  double F = 0.0;
  const void *HostPtr = nullptr;

  static KernelArg i64(std::int64_t V) { return {Kind::I64, V, 0.0, nullptr}; }
  static KernelArg f64(double V) { return {Kind::F64, 0, V, nullptr}; }
  /// A pointer previously mapped with enterData; translated at launch.
  static KernelArg mapped(const void *P) {
    return {Kind::MappedPtr, 0, 0.0, P};
  }
};

/// Host-side OpenMP offloading runtime over one virtual device.
class HostRuntime {
public:
  explicit HostRuntime(vgpu::VirtualGPU &Device) : Device(Device) {}
  ~HostRuntime();
  HostRuntime(const HostRuntime &) = delete;
  HostRuntime &operator=(const HostRuntime &) = delete;

  // --- Device images -------------------------------------------------------

  /// Register and load a compiled module; kernels become launchable by
  /// name. The module must outlive this runtime (or be removed with
  /// unregisterImage first). Fails — registering nothing — when any kernel
  /// name in M is already registered: silently overwriting would leave
  /// launches bound to an ambiguous image. A pre-lowered bytecode module
  /// (CompiledKernel::Bytecode) is attached to the image when provided so
  /// bytecode-tier launches skip the lazy lowering.
  Expected<void>
  registerImage(const ir::Module &M,
                std::shared_ptr<const vgpu::BytecodeModule> Bytecode = nullptr);

  /// Remove every image previously registered from M, dropping its kernel
  /// name bindings. No-op when M was never registered.
  void unregisterImage(const ir::Module &M);

  // --- Data mapping (present table, reference counted) ----------------------

  /// Map [HostPtr, HostPtr+Size) to device memory ("omp target enter
  /// data"). Increments the reference count when already present (the
  /// size must then match). CopyTo controls the `to` motion clause.
  Expected<DeviceAddr> enterData(const void *HostPtr, std::uint64_t Size,
                                 bool CopyTo = true);

  /// Unmap ("omp target exit data"): decrement the reference count;
  /// CopyFrom performs the `from` motion when given. Storage is released
  /// when the count reaches zero.
  Expected<bool> exitData(void *HostPtr, bool CopyFrom = false);

  /// "omp target update to/from": refresh one direction without changing
  /// reference counts.
  Expected<bool> updateTo(const void *HostPtr);
  Expected<bool> updateFrom(void *HostPtr);

  /// Device address of a mapped host pointer (error when not present).
  Expected<DeviceAddr> lookup(const void *HostPtr) const;
  /// True when the pointer is currently mapped.
  [[nodiscard]] bool isPresent(const void *HostPtr) const;
  /// Number of live mappings (leak checks in tests).
  [[nodiscard]] std::size_t numMappings() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Table.size();
  }

  // --- Kernel launches ---------------------------------------------------------

  /// Launch a registered kernel ("omp target teams ..."): marshals the
  /// arguments (translating mapped pointers) and blocks until completion.
  Expected<LaunchResult> launch(std::string_view KernelName,
                                std::span<const KernelArg> Args,
                                std::uint32_t NumTeams,
                                std::uint32_t NumThreads);

private:
  struct Mapping {
    DeviceAddr Addr;
    std::uint64_t Size = 0;
    std::uint32_t RefCount = 0;
  };

  struct KernelEntry {
    const vgpu::ModuleImage *Image = nullptr;
    const ir::Function *Kernel = nullptr;
  };

  vgpu::VirtualGPU &Device;
  /// Guards the present table: application host threads may issue
  /// enterData/exitData concurrently (OpenMP target tasks).
  mutable std::mutex Mutex;
  std::map<const void *, Mapping> Table;
  std::vector<std::unique_ptr<vgpu::ModuleImage>> Images;
  std::map<std::string, KernelEntry, std::less<>> Kernels;
};

} // namespace codesign::host
